// Package metrics is the simulated kernel's telemetry subsystem: a
// registry of atomic counters, gauges, and fixed-bucket latency
// histograms covering every layer the paper's evaluation measures —
// fork latency per engine (§5.1, Figure 2), fault-handling cost
// (§5.2, Table 1), page-table sharing versus copying (§3.1), the
// physical allocator's shard caches, and the software TLB.
//
// Design rules:
//
//   - Concurrency-safe: every metric is a plain atomic; readers never
//     block writers. Snapshot() is a racy-but-coherent read of each
//     individual metric, the same contract /proc counters give.
//   - Near-zero cost when disabled: hot paths guard instrumentation
//     with Registry.Enabled() — one atomic load — and skip the
//     time.Now() calls entirely. A nil *Registry reports disabled, so
//     layers built without a registry need no special cases.
//   - Typed, not stringly: metrics are struct fields, so the compiler
//     checks every charge site and Snapshot() returns a typed tree
//     (contrast internal/profile, the deprecated string-keyed cost
//     model kept for the Figure 3 attribution).
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one event.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of finite log₂ latency buckets. Bucket i
// covers [2^i, 2^(i+1)) nanoseconds (bucket 0 also absorbs
// sub-nanosecond observations), so the finite range spans 1 ns up to
// 2^30 ns ≈ 1.07 s — the ns→ms scale the fork and fault paths live on.
// Observations beyond the last finite bucket land in the overflow
// bucket, index HistBuckets.
const HistBuckets = 30

// Histogram is a fixed-bucket log₂ latency histogram. The zero value
// is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	max     atomic.Uint64 // largest observation, nanoseconds
	buckets [HistBuckets + 1]atomic.Uint64
}

// bucketOf maps a nanosecond latency to its bucket index.
func bucketOf(ns uint64) int {
	if ns == 0 {
		return 0
	}
	b := bits.Len64(ns) - 1
	if b >= HistBuckets {
		return HistBuckets
	}
	return b
}

// BucketBound returns the exclusive upper bound of bucket i in
// nanoseconds, or 0 for the overflow bucket.
func BucketBound(i int) uint64 {
	if i >= HistBuckets {
		return 0
	}
	return uint64(1) << (i + 1)
}

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) {
	var ns uint64
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
	h.buckets[bucketOf(ns)].Add(1)
}

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// Observe calls may be partially included (count, sum, and buckets are
// read independently); totals are eventually consistent, never torn.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// ForkEngine indexes per-engine fork metrics. The values deliberately
// match core.ForkMode (Classic=0, OnDemand=1) so layers convert by
// integer cast without importing core.
type ForkEngine int

// Fork engines.
const (
	EngineClassic ForkEngine = iota
	EngineOnDemand
	NumEngines // bound for per-engine arrays
)

// String names the engine as the paper does.
func (e ForkEngine) String() string {
	switch e {
	case EngineClassic:
		return "classic"
	case EngineOnDemand:
		return "ondemand"
	default:
		return "unknown"
	}
}

// Registry is the system-wide metric tree. All fields are charged
// directly by the owning subsystem; hot paths must guard charges with
// Enabled().
type Registry struct {
	enabled atomic.Bool

	// Fork engine metrics (internal/core fork paths).
	Fork struct {
		// Forks and Latency are per engine, indexed by ForkEngine.
		Forks   [NumEngines]Counter
		Latency [NumEngines]Histogram
		// TablesShared counts last-level PTE tables shared with a child
		// at fork time (§3.1); TablesCopied counts leaf tables copied
		// eagerly by the classic engine. Their ratio is the work
		// on-demand-fork defers.
		TablesShared Counter
		TablesCopied Counter
		// PMDTablesShared counts whole PMD tables shared by the §4
		// huge-page extension.
		PMDTablesShared Counter
		// ParallelForks counts forks that fanned out to the worker
		// pool; ParallelTasks counts the PMD-slot-range tasks they
		// produced (tasks/forks ≈ achieved fan-out width).
		ParallelForks Counter
		ParallelTasks Counter
	}

	// Fault-path metrics (internal/core fault handler).
	Fault struct {
		ReadFaults   Counter
		WriteFaults  Counter
		ReadLatency  Histogram
		WriteLatency Histogram
		// TableCopyLatency times genuine shared-table splits — the
		// deferred copy of §3.4, the number Table 1 compares.
		TableCopyLatency Histogram
		TableSplits      Counter // shared PTE tables copied on demand
		PMDSplits        Counter // shared huge-page PMD tables copied on demand
		FastDedups       Counter // last-sharer re-dedications (no copy)
		PageCopies       Counter // 4 KiB COW data copies
		HugeCopies       Counter // 2 MiB COW data copies
		ZeroElides       Counter // COW copies skipped: source page all-zero
		Segfaults        Counter // unrepairable faults
	}

	// Physical allocator metrics (internal/mem/phys). Frame-level
	// gauges (frames in use, peak, shard-cached) are filled from
	// allocator state at snapshot time — see Kernel.MetricsSnapshot.
	Alloc struct {
		ShardHits    Counter // order-0 allocations served by a shard cache
		ShardRefills Counter // batched pulls from the buddy core
		ShardDrains  Counter // batched returns to the buddy core
		HugeAllocs   Counter // order-9 compound allocations (buddy direct)
	}

	// Reclaim metrics (internal/mem/reclaim): LRU scanning, eviction,
	// swap I/O, and huge-page splits. Names follow /proc/vmstat.
	Reclaim struct {
		PgScanKswapd       Counter   // LRU pages scanned by the background reclaimer
		PgScanDirect       Counter   // LRU pages scanned by direct reclaim
		PgStealKswapd      Counter   // pages evicted by the background reclaimer
		PgStealDirect      Counter   // pages evicted by direct reclaim
		PswpIn             Counter   // pages read back from the swap store
		PswpOut            Counter   // pages written to the swap store
		HugeSplits         Counter   // 2 MiB mappings split for eviction
		KswapdWakeups      Counter   // kswapd episodes that found pressure
		DirectReclaims     Counter   // allocations that entered direct reclaim
		SwapInLatency      Histogram // fault-path swap-in stall
		SwapOutLatency     Histogram // store write during eviction
		DirectStallLatency Histogram // full direct-reclaim stall
	}

	// TLB metrics. The live TLBs keep their own per-process atomics;
	// the kernel folds exited processes' totals in here and sums live
	// ones at snapshot time, so the hot lookup path pays nothing extra.
	TLB struct {
		Hits       Counter
		Misses     Counter
		Flushes    Counter
		Shootdowns Counter
	}

	// Robustness metrics: what the error paths actually did. Injected
	// fault totals live in the failpoint registry (kernel overlays them
	// at snapshot time, like the allocator gauges); everything here is
	// observed behaviour — rollbacks taken, retries spent, degradations
	// entered — so a chaos run can assert the recovery machinery ran.
	Robust struct {
		ForkAborts       Counter // forks unwound after a mid-copy ErrNoMem
		SwapReadRetries  Counter // swap-store reads retried after an I/O error
		SwapWriteRetries Counter // swap-store writes retried after an I/O error
		SwapReadErrors   Counter // swap-ins abandoned after exhausting retries
		SwapWriteErrors  Counter // evictions abandoned after exhausting retries
		SwapCorruptions  Counter // swap-in checksum mismatches (ErrSwapCorrupt)
		SwapDegrades     Counter // transitions into degraded (auto-disabled) swap
		KswapdErrors     Counter // kswapd passes that panicked and were recovered
	}

	// Multi-tenant control-plane metrics (internal/tenant): system-wide
	// fork admission outcomes plus the fair-share reclaim pressure
	// exerted on over-quota tenants. Per-tenant quota/usage counters
	// live on the Tenant objects and are served by /proc/odf/tenants.
	Tenant struct {
		ForksAdmitted Counter   // forks admitted without queueing
		ForksQueued   Counter   // forks that waited in an admission queue
		ForksRejected Counter   // forks refused: queue full or wait timed out
		QueueWait     Histogram // admission queue wait (queued forks only)
		FairEvictions Counter   // pages stolen from over-quota tenant LRU partitions
	}
}

// New returns an enabled registry.
func New() *Registry {
	r := &Registry{}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether instrumentation should run. Nil registries
// report false, so charge sites need no nil checks beyond this guard.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled toggles collection. Disabling keeps accumulated values.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// Snapshot captures the registry's current values as a typed tree.
// Frame-level allocator gauges are zero here; the kernel overlays them
// (Kernel.MetricsSnapshot) because they are allocator state, not
// registry counters.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for e := ForkEngine(0); e < NumEngines; e++ {
		s.Fork.Engines[e] = EngineSnapshot{
			Forks:   r.Fork.Forks[e].Load(),
			Latency: r.Fork.Latency[e].Snapshot(),
		}
	}
	s.Fork.TablesShared = r.Fork.TablesShared.Load()
	s.Fork.TablesCopied = r.Fork.TablesCopied.Load()
	s.Fork.PMDTablesShared = r.Fork.PMDTablesShared.Load()
	s.Fork.ParallelForks = r.Fork.ParallelForks.Load()
	s.Fork.ParallelTasks = r.Fork.ParallelTasks.Load()

	s.Fault.ReadFaults = r.Fault.ReadFaults.Load()
	s.Fault.WriteFaults = r.Fault.WriteFaults.Load()
	s.Fault.ReadLatency = r.Fault.ReadLatency.Snapshot()
	s.Fault.WriteLatency = r.Fault.WriteLatency.Snapshot()
	s.Fault.TableCopyLatency = r.Fault.TableCopyLatency.Snapshot()
	s.Fault.TableSplits = r.Fault.TableSplits.Load()
	s.Fault.PMDSplits = r.Fault.PMDSplits.Load()
	s.Fault.FastDedups = r.Fault.FastDedups.Load()
	s.Fault.PageCopies = r.Fault.PageCopies.Load()
	s.Fault.HugeCopies = r.Fault.HugeCopies.Load()
	s.Fault.ZeroElides = r.Fault.ZeroElides.Load()
	s.Fault.Segfaults = r.Fault.Segfaults.Load()

	s.Alloc.ShardHits = r.Alloc.ShardHits.Load()
	s.Alloc.ShardRefills = r.Alloc.ShardRefills.Load()
	s.Alloc.ShardDrains = r.Alloc.ShardDrains.Load()
	s.Alloc.HugeAllocs = r.Alloc.HugeAllocs.Load()

	s.Reclaim.PgScanKswapd = r.Reclaim.PgScanKswapd.Load()
	s.Reclaim.PgScanDirect = r.Reclaim.PgScanDirect.Load()
	s.Reclaim.PgStealKswapd = r.Reclaim.PgStealKswapd.Load()
	s.Reclaim.PgStealDirect = r.Reclaim.PgStealDirect.Load()
	s.Reclaim.PswpIn = r.Reclaim.PswpIn.Load()
	s.Reclaim.PswpOut = r.Reclaim.PswpOut.Load()
	s.Reclaim.HugeSplits = r.Reclaim.HugeSplits.Load()
	s.Reclaim.KswapdWakeups = r.Reclaim.KswapdWakeups.Load()
	s.Reclaim.DirectReclaims = r.Reclaim.DirectReclaims.Load()
	s.Reclaim.SwapInLatency = r.Reclaim.SwapInLatency.Snapshot()
	s.Reclaim.SwapOutLatency = r.Reclaim.SwapOutLatency.Snapshot()
	s.Reclaim.DirectStallLatency = r.Reclaim.DirectStallLatency.Snapshot()

	s.TLB.Hits = r.TLB.Hits.Load()
	s.TLB.Misses = r.TLB.Misses.Load()
	s.TLB.Flushes = r.TLB.Flushes.Load()
	s.TLB.Shootdowns = r.TLB.Shootdowns.Load()

	s.Robust.ForkAborts = r.Robust.ForkAborts.Load()
	s.Robust.SwapReadRetries = r.Robust.SwapReadRetries.Load()
	s.Robust.SwapWriteRetries = r.Robust.SwapWriteRetries.Load()
	s.Robust.SwapReadErrors = r.Robust.SwapReadErrors.Load()
	s.Robust.SwapWriteErrors = r.Robust.SwapWriteErrors.Load()
	s.Robust.SwapCorruptions = r.Robust.SwapCorruptions.Load()
	s.Robust.SwapDegrades = r.Robust.SwapDegrades.Load()
	s.Robust.KswapdErrors = r.Robust.KswapdErrors.Load()

	s.Tenant.ForksAdmitted = r.Tenant.ForksAdmitted.Load()
	s.Tenant.ForksQueued = r.Tenant.ForksQueued.Load()
	s.Tenant.ForksRejected = r.Tenant.ForksRejected.Load()
	s.Tenant.QueueWait = r.Tenant.QueueWait.Snapshot()
	s.Tenant.FairEvictions = r.Tenant.FairEvictions.Load()
	return s
}
