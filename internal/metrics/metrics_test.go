package metrics

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramZeroObservations(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.SumNS != 0 || s.MaxNS != 0 {
		t.Fatalf("empty histogram snapshot not zero: %+v", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", s.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	for i, n := range s.Buckets {
		if n != 0 {
			t.Fatalf("empty histogram has bucket[%d] = %d", i, n)
		}
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	var h Histogram
	// Sub-nanosecond and negative observations clamp into bucket 0.
	h.Observe(0)
	h.Observe(-5 * time.Nanosecond)
	h.Observe(1) // 1ns → bucket 0 ([1,2))
	h.Observe(1024)
	h.Observe(1500) // both in bucket 10 ([1024,2048))
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Buckets[0] != 3 {
		t.Fatalf("bucket 0 = %d, want 3", s.Buckets[0])
	}
	if s.Buckets[10] != 2 {
		t.Fatalf("bucket 10 = %d, want 2", s.Buckets[10])
	}
	if s.MaxNS != 1500 {
		t.Fatalf("max = %d, want 1500", s.MaxNS)
	}
	if s.SumNS != 1+1024+1500 {
		t.Fatalf("sum = %d, want %d", s.SumNS, 1+1024+1500)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	big := 5 * time.Second // far beyond the 2^30 ns finite range
	h.Observe(big)
	h.Observe(time.Duration(1) << 62)
	s := h.Snapshot()
	if got := s.Buckets[HistBuckets]; got != 2 {
		t.Fatalf("overflow bucket = %d, want 2", got)
	}
	if s.MaxNS != uint64(1)<<62 {
		t.Fatalf("max = %d, want %d", s.MaxNS, uint64(1)<<62)
	}
	// Quantiles landing in the overflow bucket report the recorded max:
	// the bucket has no finite upper bound to interpolate against.
	if got := s.Quantile(0.99); got != s.MaxNS {
		t.Fatalf("overflow quantile = %d, want max %d", got, s.MaxNS)
	}
	// Rendering labels the overflow bucket +inf.
	var snap Snapshot
	snap.Fault.WriteLatency = s
	if !strings.Contains(snap.Render(), "fault.write.latency.bucket{le_ns=+inf} 2") {
		t.Fatalf("render missing +inf bucket:\n%s", snap.Render())
	}
}

// TestHistogramQuantileSingleObservation pins the Count==1 fast path:
// with one observation every quantile is exactly that observation, not
// a mid-bucket interpolation (which could report up to 2× the value).
func TestHistogramQuantileSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(1500 * time.Nanosecond) // bucket [1024,2048)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 1500 {
			t.Fatalf("single-observation Quantile(%v) = %d, want 1500", q, got)
		}
	}
}

// TestHistogramQuantileMaxClamp pins the unconditional MaxNS clamp: no
// quantile reports past the largest observation, including when every
// observation was 0 ns (MaxNS == 0).
func TestHistogramQuantileMaxClamp(t *testing.T) {
	var h Histogram
	// Two observations at the very bottom of bucket 10: interpolation
	// across [1024,2048) would overshoot without the clamp.
	h.Observe(1024)
	h.Observe(1025)
	s := h.Snapshot()
	if got := s.Quantile(0.99); got > s.MaxNS {
		t.Fatalf("p99 = %d exceeds max %d", got, s.MaxNS)
	}

	var z Histogram
	z.Observe(0)
	z.Observe(0)
	zs := z.Snapshot()
	if got := zs.Quantile(0.99); got != 0 {
		t.Fatalf("all-zero p99 = %d, want 0", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(1000 + i*10)) // all inside [1024,2048) except a few low ones
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 512 || p50 >= 2048 {
		t.Fatalf("p50 = %d, want within the populated log2 range", p50)
	}
	if p99, p50 := s.Quantile(0.99), s.Quantile(0.50); p99 < p50 {
		t.Fatalf("p99 (%d) < p50 (%d)", p99, p50)
	}
}

// TestHistogramConcurrent exercises Observe racing Snapshot; run under
// -race this proves the atomics cover every field.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		writers = 4
		perG    = 2000
	)
	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var inBuckets uint64
			for _, n := range s.Buckets {
				inBuckets += n
			}
			// count and buckets are read independently, so they may
			// skew during concurrent writes, but never go negative or
			// exceed the final total.
			if inBuckets > writers*perG {
				t.Errorf("bucket total %d exceeds writes", inBuckets)
				return
			}
		}
	}()
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*1000 + i))
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	readerWG.Wait()
	s := h.Snapshot()
	if s.Count != writers*perG {
		t.Fatalf("final count = %d, want %d", s.Count, writers*perG)
	}
	var inBuckets uint64
	for _, n := range s.Buckets {
		inBuckets += n
	}
	if inBuckets != writers*perG {
		t.Fatalf("final bucket total = %d, want %d", inBuckets, writers*perG)
	}
}

func TestRegistryNilAndDisabled(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.SetEnabled(true) // must not panic
	if s := r.Snapshot(); !reflect.DeepEqual(s, Snapshot{}) {
		t.Fatalf("nil registry snapshot not zero: %+v", s)
	}
	live := New()
	if !live.Enabled() {
		t.Fatal("fresh registry should be enabled")
	}
	live.SetEnabled(false)
	if live.Enabled() {
		t.Fatal("disable did not take")
	}
	live.SetEnabled(true)
	if !live.Enabled() {
		t.Fatal("re-enable did not take")
	}
}

func TestSnapshotSub(t *testing.T) {
	r := New()
	r.Fork.Forks[EngineOnDemand].Add(3)
	r.Fork.TablesShared.Add(100)
	r.Fault.WriteFaults.Add(7)
	r.Fault.WriteLatency.Observe(2048)
	prev := r.Snapshot()
	prev.Alloc.FramesInUse = 10

	r.Fork.Forks[EngineOnDemand].Add(2)
	r.Fork.TablesShared.Add(50)
	r.Fault.WriteFaults.Add(1)
	r.Fault.WriteLatency.Observe(4096)
	cur := r.Snapshot()
	cur.Alloc.FramesInUse = 25

	d := cur.Sub(prev)
	if d.Fork.OnDemand().Forks != 2 {
		t.Fatalf("delta forks = %d, want 2", d.Fork.OnDemand().Forks)
	}
	if d.Fork.TablesShared != 50 {
		t.Fatalf("delta tables shared = %d, want 50", d.Fork.TablesShared)
	}
	if d.Fault.WriteFaults != 1 {
		t.Fatalf("delta write faults = %d, want 1", d.Fault.WriteFaults)
	}
	if d.Fault.WriteLatency.Count != 1 || d.Fault.WriteLatency.SumNS != 4096 {
		t.Fatalf("delta write latency = %+v", d.Fault.WriteLatency)
	}
	if d.Alloc.FramesInUse != 25 {
		t.Fatalf("gauge should keep current value, got %d", d.Alloc.FramesInUse)
	}
	if d.Fork.Classic().Forks != 0 {
		t.Fatalf("untouched engine delta = %d, want 0", d.Fork.Classic().Forks)
	}
}

func TestRenderDeterministicOrder(t *testing.T) {
	var s Snapshot
	out1 := s.Render()
	out2 := s.Render()
	if out1 != out2 {
		t.Fatal("Render is not deterministic for identical snapshots")
	}
	for _, want := range []string{
		"fork.classic.forks 0",
		"fork.ondemand.forks 0",
		"fault.read.count 0",
		"alloc.frames_in_use 0",
		"tlb.hits 0",
	} {
		if !strings.Contains(out1, want) {
			t.Fatalf("render missing %q:\n%s", want, out1)
		}
	}
}
