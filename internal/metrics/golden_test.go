package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot is a fixed, fully-populated telemetry tree covering
// every rendered section: both engines, histograms with interior and
// overflow buckets, gauges, and all counter groups.
func goldenSnapshot() Snapshot {
	var s Snapshot

	classic := &s.Fork.Engines[EngineClassic]
	classic.Forks = 2
	classic.Latency.Count = 2
	classic.Latency.SumNS = 3_000_000
	classic.Latency.MaxNS = 2_000_000
	classic.Latency.Buckets[20] = 2 // [1.05ms, 2.1ms)

	od := &s.Fork.Engines[EngineOnDemand]
	od.Forks = 3
	od.Latency.Count = 3
	od.Latency.SumNS = 150_000
	od.Latency.MaxNS = 60_000
	od.Latency.Buckets[15] = 3 // [32.8µs, 65.5µs)

	s.Fork.TablesShared = 384
	s.Fork.TablesCopied = 128
	s.Fork.PMDTablesShared = 2
	s.Fork.ParallelForks = 1
	s.Fork.ParallelTasks = 4

	s.Fault.ReadFaults = 10
	s.Fault.ReadLatency.Count = 10
	s.Fault.ReadLatency.SumNS = 4_000
	s.Fault.ReadLatency.MaxNS = 500
	s.Fault.ReadLatency.Buckets[8] = 10 // [256ns, 512ns)
	s.Fault.WriteFaults = 7
	s.Fault.WriteLatency.Count = 7
	s.Fault.WriteLatency.SumNS = 21_000
	s.Fault.WriteLatency.MaxNS = 4_000
	s.Fault.WriteLatency.Buckets[11] = 7 // [2.05µs, 4.1µs)
	s.Fault.TableCopyLatency.Count = 2
	s.Fault.TableCopyLatency.SumNS = 6_000_005_000
	s.Fault.TableCopyLatency.MaxNS = 6_000_000_000
	s.Fault.TableCopyLatency.Buckets[12] = 1          // interior
	s.Fault.TableCopyLatency.Buckets[HistBuckets] = 1 // overflow
	s.Fault.TableSplits = 5
	s.Fault.PMDSplits = 1
	s.Fault.FastDedups = 2
	s.Fault.PageCopies = 9
	s.Fault.HugeCopies = 1
	s.Fault.ZeroElides = 4
	s.Fault.Segfaults = 1

	s.Alloc.ShardHits = 100
	s.Alloc.ShardRefills = 4
	s.Alloc.ShardDrains = 3
	s.Alloc.HugeAllocs = 2
	s.Alloc.FramesInUse = 5_000
	s.Alloc.FramesPeak = 9_000
	s.Alloc.ShardCached = 128

	s.Reclaim.PgScanKswapd = 64
	s.Reclaim.PgScanDirect = 16
	s.Reclaim.PgStealKswapd = 48
	s.Reclaim.PgStealDirect = 12
	s.Reclaim.PswpIn = 30
	s.Reclaim.PswpOut = 60
	s.Reclaim.HugeSplits = 1
	s.Reclaim.KswapdWakeups = 5
	s.Reclaim.DirectReclaims = 2
	s.Reclaim.SwapInLatency.Count = 30
	s.Reclaim.SwapInLatency.SumNS = 90_000
	s.Reclaim.SwapInLatency.MaxNS = 5_000
	s.Reclaim.SwapInLatency.Buckets[11] = 30 // [2.05µs, 4.1µs)
	s.Reclaim.SwapOutLatency.Count = 60
	s.Reclaim.SwapOutLatency.SumNS = 300_000
	s.Reclaim.SwapOutLatency.MaxNS = 9_000
	s.Reclaim.SwapOutLatency.Buckets[12] = 60 // [4.1µs, 8.2µs)
	s.Reclaim.DirectStallLatency.Count = 2
	s.Reclaim.DirectStallLatency.SumNS = 400_000
	s.Reclaim.DirectStallLatency.MaxNS = 300_000
	s.Reclaim.DirectStallLatency.Buckets[17] = 1 // [131µs, 262µs)
	s.Reclaim.DirectStallLatency.Buckets[18] = 1 // [262µs, 524µs)

	s.TLB.Hits = 1_000
	s.TLB.Misses = 50
	s.TLB.Flushes = 6
	s.TLB.Shootdowns = 4

	s.Robust.InjectedFaults = 25
	s.Robust.ForkAborts = 3
	s.Robust.SwapReadRetries = 6
	s.Robust.SwapWriteRetries = 4
	s.Robust.SwapReadErrors = 2
	s.Robust.SwapWriteErrors = 1
	s.Robust.SwapCorruptions = 1
	s.Robust.SwapDegrades = 1
	s.Robust.KswapdErrors = 2
	return s
}

// TestRenderGolden pins the exact /proc/odf/metrics text format. A
// deliberate format change regenerates the file with `go test -update`.
func TestRenderGolden(t *testing.T) {
	got := goldenSnapshot().Render()
	path := filepath.Join("testdata", "render.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Errorf("line %d:\n  got  %q\n  want %q", i+1, g, w)
			}
		}
		t.Fatalf("rendered metrics differ from %s (use -update after a deliberate format change)", path)
	}
}
