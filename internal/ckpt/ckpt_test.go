package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/metrics"
)

// testPage builds a page-sized payload from a seed; seed<0 yields a
// page with trailing zeroes so trimming gets exercised.
func testPage(seed int) []byte {
	b := make([]byte, addr.PageSize)
	n := len(b)
	if seed < 0 {
		seed = -seed
		n = 100 + seed*13%2000
	}
	for i := 0; i < n; i++ {
		b[i] = byte(seed*131 + i*7 + 1)
	}
	return b
}

func snapIDFrom(b byte) (id [16]byte) {
	for i := range id {
		id[i] = b
	}
	return id
}

// writeSnapshot writes a snapshot of the given (vaddr, data) pairs.
func writeSnapshot(t *testing.T, path string, opt WriterOptions, pages map[uint64][]byte) CommitStats {
	t.Helper()
	w, err := NewWriter(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	var vaddrs []uint64
	for v := range pages {
		vaddrs = append(vaddrs, v)
	}
	for i := 0; i < len(vaddrs); i++ {
		for j := i + 1; j < len(vaddrs); j++ {
			if vaddrs[j] < vaddrs[i] {
				vaddrs[i], vaddrs[j] = vaddrs[j], vaddrs[i]
			}
		}
	}
	for _, v := range vaddrs {
		if err := w.AddPage(v, pages[v]); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := w.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// wantPage asserts Page(v) returns content equal to want (compared as
// full zero-extended pages; want==nil means an explicit zero record).
func wantPage(t *testing.T, s *Snapshot, v uint64, want []byte) {
	t.Helper()
	data, found, err := s.Page(v)
	if err != nil || !found {
		t.Fatalf("Page(%#x) = found=%v err=%v, want found", v, found, err)
	}
	full := make([]byte, addr.PageSize)
	copy(full, data)
	wfull := make([]byte, addr.PageSize)
	copy(wfull, want)
	if !bytes.Equal(full, wfull) {
		t.Fatalf("Page(%#x) content mismatch", v)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	pages := map[uint64][]byte{}
	// Enough pages for several chunks, with mixed full/trimmed/zero
	// content and a gap in the address range.
	for i := 0; i < 150; i++ {
		v := uint64(0x10000000) + uint64(i)*addr.PageSize
		if i >= 70 && i < 90 {
			v += 1 << 30 // second region far away
		}
		switch i % 3 {
		case 0:
			pages[v] = testPage(i)
		case 1:
			pages[v] = testPage(-i - 1)
		default:
			pages[v] = nil // explicit zero record
		}
	}
	opt := WriterOptions{
		SnapID: snapIDFrom(1),
		VMAs:   []VMARec{{Start: 0x10000000, Size: 256 * addr.PageSize, Prot: 3, Flags: 1}},
	}
	stats := writeSnapshot(t, path, opt, pages)
	if stats.Pages != 150 {
		t.Fatalf("stats.Pages = %d, want 150", stats.Pages)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after commit")
	}

	s, err := Open(path, Env{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.SnapID() != opt.SnapID {
		t.Fatalf("snapID mismatch")
	}
	if got := s.VMAs(); len(got) != 1 || got[0] != opt.VMAs[0] {
		t.Fatalf("VMAs = %+v", got)
	}
	if s.Pages() != 150 || s.ChainLen() != 1 {
		t.Fatalf("pages=%d chain=%d", s.Pages(), s.ChainLen())
	}
	for v, data := range pages {
		wantPage(t, s, v, data)
	}
	if _, found, err := s.Page(0xdead000); found || err != nil {
		t.Fatalf("unrecorded page: found=%v err=%v", found, err)
	}
	if vs, err := s.Verify(); err != nil || vs.Pages != 150 {
		t.Fatalf("Verify = %+v, %v", vs, err)
	}
	if s.Degraded() {
		t.Fatal("healthy snapshot reports degraded")
	}
}

func TestAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	w, err := NewWriter(path, WriterOptions{SnapID: snapIDFrom(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPage(0x1000, testPage(1)); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	for _, p := range []string{path, path + ".tmp"} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s exists after abort", p)
		}
	}
}

func TestInjectedWriteErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	fp := failpoint.New(1)
	if err := fp.Set(failpoint.CkptWrite, "every:1"); err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(path, WriterOptions{SnapID: snapIDFrom(1), Env: Env{Fail: fp}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < PagesPerChunk-1; i++ {
		if err := w.AddPage(uint64(i+1)*addr.PageSize, testPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The chunk flushes inside Commit and hits the failpoint.
	_, err = w.Commit()
	if !errors.Is(err, ErrIO) {
		t.Fatalf("commit err = %v, want ErrIO", err)
	}
	for _, p := range []string{path, path + ".tmp"} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s exists after injected write failure", p)
		}
	}
}

// TestCrashMidChunkLeavesTornTemp simulates the writer dying mid-chunk:
// the temp file exists but has no commit record, and must be rejected.
func TestCrashMidChunkLeavesTornTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	fp := failpoint.New(1)
	if err := fp.Set(failpoint.CkptWrite, "once"); err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(path, WriterOptions{SnapID: snapIDFrom(1), Env: Env{Fail: fp}, CrashOnInject: true})
	if err != nil {
		t.Fatal(err)
	}
	var cerr error
	for i := 0; i < 2*PagesPerChunk && cerr == nil; i++ {
		cerr = w.AddPage(uint64(i+1)*addr.PageSize, testPage(i))
	}
	if cerr == nil {
		_, cerr = w.Commit()
	}
	if !errors.Is(cerr, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", cerr)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("target path exists after crash")
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatal("crash left no temp file to fsck")
	}
	if _, err := Open(path+".tmp", Env{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(torn temp) err = %v, want ErrCorrupt", err)
	}
	rep := Fsck(path+".tmp", Env{})
	if rep.Restorable || rep.Err == "" {
		t.Fatalf("fsck of torn temp = %+v, want rejected with reason", rep)
	}
}

// TestCrashBeforeFsyncLeavesCompleteTemp simulates dying between the
// final write and the fsync: the temp file happens to be complete, so
// fsck classifies it restorable (and restoring it is safe).
func TestCrashBeforeFsyncLeavesCompleteTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	fp := failpoint.New(1)
	if err := fp.Set(failpoint.CkptFsync, "once"); err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(path, WriterOptions{SnapID: snapIDFrom(1), Env: Env{Fail: fp}, CrashOnInject: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPage(0x1000, testPage(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("commit err = %v, want ErrCrashed", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("target path exists after crash")
	}
	rep := Fsck(path+".tmp", Env{})
	if !rep.Restorable {
		t.Fatalf("fsck of complete temp = %+v, want restorable", rep)
	}
	s, err := Open(path+".tmp", Env{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wantPage(t, s, 0x1000, testPage(7))
}

// TestSilentCorruptionCaught arms ckpt.corrupt: the commit succeeds but
// a chunk byte was flipped on disk. Open succeeds (the footer is fine);
// the damage must surface as ErrCorrupt at page-fault and Verify time.
func TestSilentCorruptionCaught(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	fp := failpoint.New(1)
	if err := fp.Set(failpoint.CkptCorrupt, "every:1"); err != nil {
		t.Fatal(err)
	}
	met := metrics.New()
	w, err := NewWriter(path, WriterOptions{SnapID: snapIDFrom(1), Env: Env{Fail: fp, Met: met}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPage(0x1000, testPage(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Commit(); err != nil {
		t.Fatalf("corrupt injection must not fail the commit: %v", err)
	}
	s, err := Open(path, Env{Met: met})
	if err != nil {
		t.Fatalf("Open must succeed (footer intact): %v", err)
	}
	defer s.Close()
	if _, _, err := s.Page(0x1000); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Page on corrupted chunk err = %v, want ErrCorrupt", err)
	}
	if _, err := s.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify err = %v, want ErrCorrupt", err)
	}
	if got := met.Snapshot().Ckpt.Corruptions; got == 0 {
		t.Fatal("corruption counter not incremented")
	}
	rep := Fsck(path, Env{})
	if rep.Restorable {
		t.Fatal("fsck restored a silently corrupted file")
	}
}

// TestTruncationRejected chops a committed file at every interesting
// boundary; Open must reject each remnant, never succeed.
func TestTruncationRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	pages := map[uint64][]byte{}
	for i := 0; i < 100; i++ {
		pages[uint64(i+1)*addr.PageSize] = testPage(i)
	}
	writeSnapshot(t, path, WriterOptions{SnapID: snapIDFrom(1)}, pages)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, len(Magic), len(full) / 2, len(full) - commitLen, len(full) - 1} {
		p := filepath.Join(dir, "cut.ckpt")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(p, Env{}); err == nil {
			s.Close()
			t.Fatalf("Open accepted file truncated to %d bytes", cut)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIO) {
			t.Fatalf("truncated to %d: err = %v, want ErrCorrupt/ErrIO", cut, err)
		}
	}
}

// TestBitFlipsRejected flips individual bytes across a committed file:
// every mutation must be rejected at open, verify, or page-read time —
// never a silent wrong-content success.
func TestBitFlipsRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	pages := map[uint64][]byte{}
	for i := 0; i < 64; i++ {
		pages[uint64(i+1)*addr.PageSize] = testPage(i)
	}
	writeSnapshot(t, path, WriterOptions{SnapID: snapIDFrom(1)}, pages)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := len(full)/37 + 1
	for pos := 0; pos < len(full); pos += step {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x41
		p := filepath.Join(dir, "mut.ckpt")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(p, Env{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIO) {
				t.Fatalf("flip at %d: open err = %v", pos, err)
			}
			continue
		}
		// Open passed: the flip must be caught by Verify (chunk CRC).
		if _, err := s.Verify(); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrIO) {
			t.Fatalf("flip at %d survived open and verify (err=%v)", pos, err)
		}
		s.Close()
	}
}

// TestIncrementalChain writes parent + child and checks newest-wins
// lookup, tombstone shadowing, and chain metadata.
func TestIncrementalChain(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.ckpt")
	inc := filepath.Join(dir, "inc.ckpt")
	const (
		vA = 0x1000 // diverged in child
		vB = 0x2000 // zeroed in child (tombstone)
		vC = 0x3000 // untouched, served by parent
	)
	writeSnapshot(t, base, WriterOptions{SnapID: snapIDFrom(1)}, map[uint64][]byte{
		vA: testPage(1), vB: testPage(2), vC: testPage(3),
	})
	w, err := NewWriter(inc, WriterOptions{
		SnapID:    snapIDFrom(2),
		ParentID:  snapIDFrom(1),
		ParentRef: "base.ckpt",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddPage(vA, testPage(9)); err != nil {
		t.Fatal(err)
	}
	if err := w.AddPage(vB, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	s, err := OpenChain(inc, Env{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ChainLen() != 2 || s.Parent() == nil || s.ParentRef() != "base.ckpt" {
		t.Fatalf("chain metadata: len=%d parent=%v ref=%q", s.ChainLen(), s.Parent(), s.ParentRef())
	}
	wantPage(t, s, vA, testPage(9)) // child shadows parent
	wantPage(t, s, vB, nil)         // tombstone shadows parent content
	wantPage(t, s, vC, testPage(3)) // parent serves untouched page
}

// TestChainValidation rejects a parent whose snapID does not match the
// child's recorded parentID — a swapped or regenerated parent file.
func TestChainValidation(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.ckpt")
	inc := filepath.Join(dir, "inc.ckpt")
	writeSnapshot(t, base, WriterOptions{SnapID: snapIDFrom(7)}, map[uint64][]byte{0x1000: testPage(1)})
	writeSnapshot(t, inc, WriterOptions{
		SnapID:    snapIDFrom(2),
		ParentID:  snapIDFrom(1), // does not match base's snapID 7
		ParentRef: "base.ckpt",
	}, map[uint64][]byte{0x2000: testPage(2)})
	if _, err := OpenChain(inc, Env{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenChain with wrong parent id err = %v, want ErrCorrupt", err)
	}
	// A missing parent is also fatal.
	os.Remove(base)
	if _, err := OpenChain(inc, Env{}); err == nil {
		t.Fatal("OpenChain with missing parent succeeded")
	}
}

// TestReadRetryThenSuccess arms ckpt.read once: the first chunk read
// fails, the retry succeeds transparently, and the retry counter moves.
func TestReadRetryThenSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	writeSnapshot(t, path, WriterOptions{SnapID: snapIDFrom(1)}, map[uint64][]byte{0x1000: testPage(1)})
	fp := failpoint.New(1)
	if err := fp.Set(failpoint.CkptRead, "once"); err != nil {
		t.Fatal(err)
	}
	met := metrics.New()
	s, err := Open(path, Env{Fail: fp, Met: met})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wantPage(t, s, 0x1000, testPage(1))
	snap := met.Snapshot()
	if snap.Ckpt.ReadRetries != 1 || snap.Ckpt.ReadErrors != 0 {
		t.Fatalf("retries=%d errors=%d, want 1/0", snap.Ckpt.ReadRetries, snap.Ckpt.ReadErrors)
	}
	if s.Degraded() {
		t.Fatal("recovered snapshot latched degraded")
	}
}

// TestReadExhaustionDegrades arms ckpt.read every:1: all attempts fail,
// the page read reports ErrIO, and the snapshot latches degraded.
func TestReadExhaustionDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	writeSnapshot(t, path, WriterOptions{SnapID: snapIDFrom(1)}, map[uint64][]byte{0x1000: testPage(1)})
	fp := failpoint.New(1)
	if err := fp.Set(failpoint.CkptRead, "every:1"); err != nil {
		t.Fatal(err)
	}
	met := metrics.New()
	s, err := Open(path, Env{Fail: fp, Met: met})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Page(0x1000); !errors.Is(err, ErrIO) {
		t.Fatalf("Page err = %v, want ErrIO", err)
	}
	if !s.Degraded() {
		t.Fatal("snapshot not degraded after retry exhaustion")
	}
	snap := met.Snapshot()
	if snap.Ckpt.ReadErrors != 1 || snap.Ckpt.Degrades != 1 {
		t.Fatalf("errors=%d degrades=%d, want 1/1", snap.Ckpt.ReadErrors, snap.Ckpt.Degrades)
	}
	// The latch is one-shot.
	if _, _, err := s.Page(0x1000); !errors.Is(err, ErrIO) {
		t.Fatal("second read did not fail")
	}
	if got := met.Snapshot().Ckpt.Degrades; got != 1 {
		t.Fatalf("degrades = %d after second failure, want latched 1", got)
	}
}

// TestFsckDir classifies a mixed directory: a good file, a torn temp,
// and a corrupted file — every candidate gets exactly one verdict.
func TestFsckDir(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.ckpt")
	writeSnapshot(t, good, WriterOptions{SnapID: snapIDFrom(1)}, map[uint64][]byte{0x1000: testPage(1)})
	if err := os.WriteFile(filepath.Join(dir, "torn.ckpt.tmp"), []byte(Magic+"garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ckpt")
	full, _ := os.ReadFile(good)
	mut := append([]byte(nil), full...)
	mut[len(Magic)+2] ^= 0xFF // inside the first chunk
	if err := os.WriteFile(bad, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	reps, err := FsckDir(dir, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("fsck found %d candidates, want 3", len(reps))
	}
	verdicts := map[string]bool{}
	for _, r := range reps {
		if r.Restorable == (r.Err != "") {
			t.Fatalf("ambiguous verdict: %+v", r)
		}
		verdicts[filepath.Base(r.Path)] = r.Restorable
	}
	if !verdicts["good.ckpt"] || verdicts["bad.ckpt"] || verdicts["torn.ckpt.tmp"] {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

// TestWriterArgumentValidation pins the AddPage contract.
func TestWriterArgumentValidation(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(filepath.Join(dir, "a.ckpt"), WriterOptions{SnapID: snapIDFrom(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.AddPage(0x1001, testPage(1)); err == nil {
		t.Fatal("unaligned vaddr accepted")
	}
	if err := w.AddPage(0x2000, testPage(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.AddPage(0x2000, testPage(2)); err == nil {
		t.Fatal("duplicate vaddr accepted")
	}
	if err := w.AddPage(0x1000, testPage(2)); err == nil {
		t.Fatal("descending vaddr accepted")
	}
	if err := w.AddPage(0x3000, make([]byte, addr.PageSize+1)); err == nil {
		t.Fatal("oversized page accepted")
	}
}

// TestEmptyIncremental: an incremental checkpoint with zero diverged
// pages is a legal, restorable file that defers entirely to its parent.
func TestEmptyIncremental(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.ckpt")
	inc := filepath.Join(dir, "inc.ckpt")
	writeSnapshot(t, base, WriterOptions{SnapID: snapIDFrom(1)}, map[uint64][]byte{0x1000: testPage(1)})
	writeSnapshot(t, inc, WriterOptions{
		SnapID: snapIDFrom(2), ParentID: snapIDFrom(1), ParentRef: "base.ckpt",
	}, nil)
	s, err := OpenChain(inc, Env{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wantPage(t, s, 0x1000, testPage(1))
	if rep := Fsck(inc, Env{}); !rep.Restorable {
		t.Fatalf("empty incremental rejected: %+v", rep)
	}
}
