package ckpt

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem/addr"
)

// FuzzCheckpointOpen feeds arbitrary bytes to the open/verify/read
// path. The contract under fuzz is reject-not-crash: any input is
// either a valid snapshot (opens, verifies, serves pages) or rejected
// with an error — never a panic, hang, or out-of-range access.
func FuzzCheckpointOpen(f *testing.F) {
	// Seed with a real snapshot, a chain child, and near-miss prefixes
	// so the fuzzer starts at the interesting boundaries.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.ckpt")
	w, err := NewWriter(path, WriterOptions{SnapID: snapIDFrom(1)})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 70; i++ {
		var data []byte
		if i%3 != 0 {
			b := make([]byte, addr.PageSize)
			for j := range b {
				b[j] = byte(i + j)
			}
			data = b
		}
		if err := w.AddPage(uint64(i+1)*addr.PageSize, data); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := w.Commit(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-commitLen])
	f.Add(valid[:len(Magic)])
	f.Add([]byte(Magic + commitMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(p, Env{})
		if err != nil {
			return // rejected: fine
		}
		defer s.Close()
		// Accepted: the structural invariants must hold well enough to
		// verify and read without crashing. Errors are fine.
		s.Verify()
		for _, vma := range s.VMAs() {
			s.Page(vma.Start)
		}
		for i := uint64(0); i < 80; i++ {
			s.Page(i * addr.PageSize)
		}
	})
}
