package ckpt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
)

// WriterOptions configure one snapshot write.
type WriterOptions struct {
	// SnapID is this snapshot's identity, recorded in the footer and
	// checked by children that chain to it.
	SnapID [16]byte
	// ParentID/ParentRef name the parent snapshot for an incremental
	// checkpoint: ParentRef is the parent's file name (resolved in the
	// same directory at open), ParentID its footer snapID. Zero/empty
	// for a full snapshot.
	ParentID  [16]byte
	ParentRef string
	// VMAs is the process's mapping table at capture time.
	VMAs []VMARec
	// Env carries failpoint/metrics hooks.
	Env Env
	// CrashOnInject makes write/fsync failpoint hits simulate the
	// writer being killed: the temp file is left exactly as written so
	// far (possibly torn mid-chunk) and the writer returns ErrCrashed.
	// Without it an injected failure cleans up the temp file and
	// returns ErrIO, like any real write error.
	CrashOnInject bool
}

// CommitStats reports what a committed snapshot contains.
type CommitStats struct {
	Pages  uint64 // page records written (incl. explicit-zero records)
	Bytes  uint64 // final file size
	Chunks int
}

// Writer streams page records into a temp file and commits atomically:
// chunks, footer, and commit record are written to <path>.tmp, fsynced,
// and renamed over path. Any failure before the rename leaves either
// nothing (errors clean up) or a torn temp file (simulated crashes) —
// never a half-written file at the target path.
type Writer struct {
	path, tmp string
	f         *os.File
	opt       WriterOptions
	off       uint64
	// current chunk accumulators
	vaddrs []uint64
	tlens  []uint16
	data   []byte
	chunks []chunkRef
	pages  uint64
	done   bool // committed, aborted, or crashed: file handle settled
}

// NewWriter starts a snapshot at path. The temp file is created
// immediately so a crash at any later point is confined to <path>.tmp.
func NewWriter(path string, opt WriterOptions) (*Writer, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("ckpt: create %s: %w", tmp, ErrIO)
	}
	w := &Writer{path: path, tmp: tmp, f: f, opt: opt}
	if _, err := f.Write([]byte(Magic)); err != nil {
		return nil, w.ioFail("write magic", err)
	}
	w.off = uint64(len(Magic))
	return w, nil
}

// AddPage appends one page record. v must be page-aligned and strictly
// greater than every previously added vaddr (the capture walks in
// address order). data is the page's content — it may be nil or
// all-zero, in which case an explicit zero record is written: at
// restore the address reads as zeroes even if a parent snapshot in the
// chain holds older content for it. Trailing zero bytes are trimmed.
func (w *Writer) AddPage(v uint64, data []byte) error {
	if w.done {
		return fmt.Errorf("ckpt: writer already finished: %w", ErrIO)
	}
	if v%addr.PageSize != 0 {
		return fmt.Errorf("ckpt: unaligned page vaddr %#x", v)
	}
	if n := len(w.vaddrs); n > 0 && v <= w.vaddrs[n-1] {
		return fmt.Errorf("ckpt: page vaddr %#x not ascending", v)
	}
	if len(data) > addr.PageSize {
		return fmt.Errorf("ckpt: page data %d bytes exceeds page size", len(data))
	}
	tlen := len(data)
	for tlen > 0 && data[tlen-1] == 0 {
		tlen--
	}
	w.vaddrs = append(w.vaddrs, v)
	w.tlens = append(w.tlens, uint16(tlen))
	w.data = append(w.data, data[:tlen]...)
	w.pages++
	if len(w.vaddrs) >= PagesPerChunk {
		return w.flushChunk()
	}
	return nil
}

// flushChunk compresses and writes the accumulated page records as one
// chunk, recording its index entry.
func (w *Writer) flushChunk() error {
	if len(w.vaddrs) == 0 {
		return nil
	}
	payload := make([]byte, 0, 4+len(w.vaddrs)*10+len(w.data))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(w.vaddrs)))
	for _, v := range w.vaddrs {
		payload = binary.LittleEndian.AppendUint64(payload, v)
	}
	for _, t := range w.tlens {
		payload = binary.LittleEndian.AppendUint16(payload, t)
	}
	payload = append(payload, w.data...)

	var cb bytes.Buffer
	fw, err := flate.NewWriter(&cb, flate.BestSpeed)
	if err != nil {
		return w.ioFail("compressor", err)
	}
	if _, err := fw.Write(payload); err != nil {
		return w.ioFail("compress chunk", err)
	}
	if err := fw.Close(); err != nil {
		return w.ioFail("compress chunk", err)
	}
	comp := cb.Bytes()

	if w.opt.Env.fire(failpoint.CkptWrite) {
		if w.opt.CrashOnInject {
			// Die mid-write: half the chunk reaches the disk, the
			// index entry never does — a torn temp file.
			w.f.Write(comp[:len(comp)/2])
			return w.crash("chunk write")
		}
		return w.ioFail("chunk write", fmt.Errorf("injected"))
	}
	if _, err := w.f.Write(comp); err != nil {
		return w.ioFail("chunk write", err)
	}
	w.chunks = append(w.chunks, chunkRef{
		off:    w.off,
		clen:   uint32(len(comp)),
		ulen:   uint32(len(payload)),
		crc:    crc32.ChecksumIEEE(comp),
		count:  uint32(len(w.vaddrs)),
		firstV: w.vaddrs[0],
		lastV:  w.vaddrs[len(w.vaddrs)-1],
	})
	w.off += uint64(len(comp))
	w.vaddrs = w.vaddrs[:0]
	w.tlens = w.tlens[:0]
	w.data = w.data[:0]
	return nil
}

// Commit flushes the last chunk, writes footer and commit record,
// fsyncs, and renames the temp file over the target path. On success
// the snapshot is durable: a crash at any earlier point leaves no file
// at the target path (or the previous snapshot, untouched).
func (w *Writer) Commit() (CommitStats, error) {
	if w.done {
		return CommitStats{}, fmt.Errorf("ckpt: writer already finished: %w", ErrIO)
	}
	if err := w.flushChunk(); err != nil {
		return CommitStats{}, err
	}

	// ckpt.corrupt simulates post-write media corruption: a byte of an
	// already-written chunk is flipped on disk while the index keeps
	// the CRC of the original bytes. The commit itself succeeds — the
	// point is that the mismatch must be caught at fault/verify time,
	// never silently restored.
	if len(w.chunks) > 0 && w.opt.Env.fire(failpoint.CkptCorrupt) {
		ch := w.chunks[len(w.chunks)-1]
		poke := int64(ch.off) + int64(ch.clen)/2
		var b [1]byte
		if _, err := w.f.ReadAt(b[:], poke); err == nil {
			b[0] ^= 0xDE
			if _, err := w.f.WriteAt(b[:], poke); err != nil {
				return CommitStats{}, w.ioFail("corrupt injection", err)
			}
		}
	}

	ft := footer{
		version:    FormatVersion,
		snapID:     w.opt.SnapID,
		parentID:   w.opt.ParentID,
		parentRef:  w.opt.ParentRef,
		vmas:       w.opt.VMAs,
		totalPages: w.pages,
		chunks:     w.chunks,
	}
	fb := ft.encode()
	if _, err := w.f.Write(fb); err != nil {
		return CommitStats{}, w.ioFail("footer write", err)
	}
	var cr [commitLen]byte
	binary.LittleEndian.PutUint64(cr[0:], w.off)
	binary.LittleEndian.PutUint32(cr[8:], uint32(len(fb)))
	binary.LittleEndian.PutUint32(cr[12:], crc32.ChecksumIEEE(fb))
	copy(cr[16:], commitMagic)
	if _, err := w.f.Write(cr[:]); err != nil {
		return CommitStats{}, w.ioFail("commit write", err)
	}

	if w.opt.Env.fire(failpoint.CkptFsync) {
		if w.opt.CrashOnInject {
			// Die between the last write and the fsync: the temp file
			// happens to be complete, but the rename never ran — the
			// target path still shows the old snapshot or nothing.
			return CommitStats{}, w.crash("fsync")
		}
		return CommitStats{}, w.ioFail("fsync", fmt.Errorf("injected"))
	}
	if err := w.f.Sync(); err != nil {
		return CommitStats{}, w.ioFail("fsync", err)
	}
	size := w.off + uint64(len(fb)) + commitLen
	if err := w.f.Close(); err != nil {
		w.done = true
		os.Remove(w.tmp)
		return CommitStats{}, fmt.Errorf("ckpt: close: %v: %w", err, ErrIO)
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		w.done = true
		os.Remove(w.tmp)
		return CommitStats{}, fmt.Errorf("ckpt: rename: %v: %w", err, ErrIO)
	}
	// Make the rename itself durable. Failure here is not fatal to the
	// snapshot's integrity (the file content is already synced), so
	// best effort.
	if d, err := os.Open(filepath.Dir(w.path)); err == nil {
		d.Sync()
		d.Close()
	}
	w.done = true
	if m := w.opt.Env.Met; m.Enabled() {
		m.Ckpt.Checkpoints.Inc()
		m.Ckpt.PagesWritten.Add(w.pages)
		m.Ckpt.BytesWritten.Add(size)
	}
	return CommitStats{Pages: w.pages, Bytes: size, Chunks: len(w.chunks)}, nil
}

// Abort discards the write and removes the temp file. Safe to call
// after Commit or a failure (no-op then).
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.tmp)
}

// ioFail settles the writer after a write-side failure: close, remove
// the temp file, wrap in ErrIO.
func (w *Writer) ioFail(op string, cause error) error {
	w.done = true
	w.f.Close()
	os.Remove(w.tmp)
	return fmt.Errorf("ckpt: %s: %v: %w", op, cause, ErrIO)
}

// crash settles the writer as a simulated kill: the temp file stays in
// whatever state the writes so far left it.
func (w *Writer) crash(op string) error {
	w.done = true
	w.f.Close()
	return fmt.Errorf("ckpt: %s: %w", op, ErrCrashed)
}
