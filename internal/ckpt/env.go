package ckpt

import (
	"repro/internal/failpoint"
	"repro/internal/metrics"
)

// Env carries the cross-cutting hooks a writer or snapshot charges:
// the failpoint registry (write/fsync/read injection), the metrics
// registry (ckpt.* counters), and the tenant the work is attributed to
// for scoped injection. The zero Env is valid — every field is
// nil-safe, matching the allocator/reclaim convention.
type Env struct {
	Fail   *failpoint.Registry
	Met    *metrics.Registry
	Tenant uint64
}

func (e Env) fire(name string) bool {
	return e.Fail.Enabled() && e.Fail.FireAs(name, e.Tenant)
}
