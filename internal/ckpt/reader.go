package ckpt

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
)

// Read-side robustness knobs, mirroring the swap store's ladder: a
// failed chunk read is retried with capped-doubling backoff before the
// snapshot latches degraded; a CRC mismatch is never retried — the
// bytes arrived, they are simply wrong.
const (
	readAttempts    = 3
	readBackoffBase = 50 * time.Microsecond
	// chunkCacheCap bounds decoded chunks kept hot per snapshot. Eight
	// chunks = 512 page records; fault bursts with locality hit the
	// cache, a full sweep re-reads at most once per chunk per round.
	chunkCacheCap = 8
)

// decodedChunk is one chunk's parsed page records.
type decodedChunk struct {
	vaddrs []uint64
	tlens  []uint16
	offs   []uint32 // prefix sums into data
	data   []byte
}

// Snapshot is an open checkpoint file (plus its incremental parents
// when opened with OpenChain). Page reads are lazy: a chunk is read,
// CRC-verified, and decompressed on first touch. Safe for concurrent
// use.
type Snapshot struct {
	path   string
	f      *os.File
	ft     *footer
	env    Env
	parent *Snapshot

	degraded atomic.Bool

	mu       sync.Mutex
	cache    map[int]*decodedChunk
	cacheSeq []int // FIFO eviction order
}

// Open validates and opens a single snapshot file: commit record,
// footer CRC, format version, header magic, and index sanity. It does
// not read any chunk data. Structural problems return ErrCorrupt with
// a precise reason; I/O problems return ErrIO.
func Open(path string, env Env) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: open %s: %v: %w", path, err, ErrIO)
	}
	s, err := newSnapshot(path, f, env)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func newSnapshot(path string, f *os.File, env Env) (*Snapshot, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("ckpt: stat %s: %v: %w", path, err, ErrIO)
	}
	size := st.Size()
	if size < int64(len(Magic))+commitLen {
		return nil, fmt.Errorf("%w: %s: file too small for a commit record (%d bytes)", ErrCorrupt, path, size)
	}
	var hdr [len(Magic)]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("ckpt: read header: %v: %w", err, ErrIO)
	}
	if string(hdr[:]) != Magic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	var cr [commitLen]byte
	if _, err := f.ReadAt(cr[:], size-commitLen); err != nil {
		return nil, fmt.Errorf("ckpt: read commit record: %v: %w", err, ErrIO)
	}
	if string(cr[16:]) != commitMagic {
		return nil, fmt.Errorf("%w: %s: missing commit record (torn or uncommitted write)", ErrCorrupt, path)
	}
	footerOff := binary.LittleEndian.Uint64(cr[0:])
	footerLen := binary.LittleEndian.Uint32(cr[8:])
	footerCRC := binary.LittleEndian.Uint32(cr[12:])
	if footerOff < uint64(len(Magic)) || uint64(footerLen) > uint64(size) ||
		footerOff+uint64(footerLen) != uint64(size)-commitLen {
		return nil, fmt.Errorf("%w: %s: commit record points outside the file", ErrCorrupt, path)
	}
	fb := make([]byte, footerLen)
	if _, err := f.ReadAt(fb, int64(footerOff)); err != nil {
		return nil, fmt.Errorf("ckpt: read footer: %v: %w", err, ErrIO)
	}
	if crc32.ChecksumIEEE(fb) != footerCRC {
		return nil, fmt.Errorf("%w: %s: footer CRC mismatch", ErrCorrupt, path)
	}
	ft, err := decodeFooter(fb, footerOff)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Snapshot{
		path:  path,
		f:     f,
		ft:    ft,
		env:   env,
		cache: make(map[int]*decodedChunk),
	}, nil
}

// OpenChain opens path and resolves its incremental-parent chain:
// each parentRef is opened in the same directory and its snapID must
// equal the child's recorded parentID, so a swapped or regenerated
// parent file is rejected instead of silently supplying wrong pages.
func OpenChain(path string, env Env) (*Snapshot, error) {
	s, err := Open(path, env)
	if err != nil {
		return nil, err
	}
	cur, depth := s, 0
	for cur.ft.parentRef != "" {
		depth++
		if depth > maxChainDepth {
			s.Close()
			return nil, fmt.Errorf("%w: %s: parent chain deeper than %d (cycle?)", ErrCorrupt, path, maxChainDepth)
		}
		pp := filepath.Join(filepath.Dir(cur.path), cur.ft.parentRef)
		p, err := Open(pp, env)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("resolving parent of %s: %w", cur.path, err)
		}
		if p.ft.snapID != cur.ft.parentID {
			p.Close()
			s.Close()
			return nil, fmt.Errorf("%w: %s: parent %s has snapshot id %x, child expects %x",
				ErrCorrupt, cur.path, pp, p.ft.snapID, cur.ft.parentID)
		}
		cur.parent = p
		cur = p
	}
	return s, nil
}

// Path returns the file path this snapshot was opened from.
func (s *Snapshot) Path() string { return s.path }

// SnapID returns the snapshot's identity.
func (s *Snapshot) SnapID() [16]byte { return s.ft.snapID }

// ParentRef returns the incremental parent's file name ("" = full).
func (s *Snapshot) ParentRef() string { return s.ft.parentRef }

// Parent returns the resolved parent snapshot (nil unless OpenChain
// found one).
func (s *Snapshot) Parent() *Snapshot { return s.parent }

// VMAs returns the capture-time mapping table.
func (s *Snapshot) VMAs() []VMARec {
	out := make([]VMARec, len(s.ft.vmas))
	copy(out, s.ft.vmas)
	return out
}

// Pages returns the number of page records in this file alone.
func (s *Snapshot) Pages() uint64 { return s.ft.totalPages }

// Chunks returns the number of chunks in this file alone.
func (s *Snapshot) Chunks() int { return len(s.ft.chunks) }

// ChainLen returns the number of files in the chain (1 = full).
func (s *Snapshot) ChainLen() int {
	n := 0
	for c := s; c != nil; c = c.parent {
		n++
	}
	return n
}

// Degraded reports whether any snapshot in the chain latched degraded
// after exhausting read retries.
func (s *Snapshot) Degraded() bool {
	for c := s; c != nil; c = c.parent {
		if c.degraded.Load() {
			return true
		}
	}
	return false
}

// Close closes the file(s) of the whole chain.
func (s *Snapshot) Close() error {
	var err error
	for c := s; c != nil; c = c.parent {
		if e := c.f.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Page returns the recorded content of the page at vaddr v, searching
// this snapshot first and then its parents — the newest record for an
// address wins, so an incremental child's explicit zero record shadows
// parent content. found=false means no snapshot in the chain recorded
// the address (it reads as zeroes in a restore). data may be shorter
// than a page (trailing zeroes trimmed) and is nil for explicit zero
// records; the caller must not retain it past the next Page call.
func (s *Snapshot) Page(v uint64) (data []byte, found bool, err error) {
	for c := s; c != nil; c = c.parent {
		data, found, err = c.lookup(v)
		if err != nil || found {
			return data, found, err
		}
	}
	return nil, false, nil
}

// lookup searches this file alone for v.
func (s *Snapshot) lookup(v uint64) ([]byte, bool, error) {
	refs := s.ft.chunks
	i := sort.Search(len(refs), func(i int) bool { return refs[i].lastV >= v })
	if i == len(refs) || refs[i].firstV > v {
		return nil, false, nil
	}
	dc, err := s.loadChunk(i)
	if err != nil {
		return nil, false, err
	}
	j := sort.Search(len(dc.vaddrs), func(j int) bool { return dc.vaddrs[j] >= v })
	if j == len(dc.vaddrs) || dc.vaddrs[j] != v {
		return nil, false, nil
	}
	if dc.tlens[j] == 0 {
		return nil, true, nil
	}
	return dc.data[dc.offs[j] : dc.offs[j]+uint32(dc.tlens[j])], true, nil
}

// loadChunk reads, CRC-verifies, decompresses, and parses chunk i,
// retrying transient I/O errors with backoff. CRC mismatches are
// final: the read succeeded and the bytes are wrong (ErrCorrupt).
// Exhausted retries latch the snapshot degraded and return ErrIO.
func (s *Snapshot) loadChunk(i int) (*decodedChunk, error) {
	s.mu.Lock()
	if dc, ok := s.cache[i]; ok {
		s.mu.Unlock()
		return dc, nil
	}
	s.mu.Unlock()

	dc, err := s.fetchChunk(i)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if have, ok := s.cache[i]; ok {
		s.mu.Unlock()
		return have, nil
	}
	s.cache[i] = dc
	s.cacheSeq = append(s.cacheSeq, i)
	if len(s.cacheSeq) > chunkCacheCap {
		evict := s.cacheSeq[0]
		s.cacheSeq = s.cacheSeq[1:]
		delete(s.cache, evict)
	}
	s.mu.Unlock()
	return dc, nil
}

// fetchChunk reads chunk i from disk, bypassing the cache.
func (s *Snapshot) fetchChunk(i int) (*decodedChunk, error) {
	ref := s.ft.chunks[i]
	comp := make([]byte, ref.clen)
	var rerr error
	for attempt := 1; ; attempt++ {
		if s.env.fire(failpoint.CkptRead) {
			rerr = fmt.Errorf("injected")
		} else {
			_, rerr = s.f.ReadAt(comp, int64(ref.off))
		}
		if rerr == nil {
			break
		}
		if attempt >= readAttempts {
			if m := s.env.Met; m.Enabled() {
				m.Ckpt.ReadErrors.Inc()
			}
			s.degrade()
			return nil, fmt.Errorf("ckpt: %s: chunk %d read failed after %d attempts: %v: %w",
				s.path, i, attempt, rerr, ErrIO)
		}
		if m := s.env.Met; m.Enabled() {
			m.Ckpt.ReadRetries.Inc()
		}
		time.Sleep(readBackoffBase << (attempt - 1))
	}

	if crc32.ChecksumIEEE(comp) != ref.crc {
		if m := s.env.Met; m.Enabled() {
			m.Ckpt.Corruptions.Inc()
		}
		return nil, fmt.Errorf("%w: %s: chunk %d CRC mismatch", ErrCorrupt, s.path, i)
	}

	fr := flate.NewReader(bytes.NewReader(comp))
	payload := make([]byte, ref.ulen)
	if _, err := io.ReadFull(fr, payload); err != nil {
		return nil, fmt.Errorf("%w: %s: chunk %d decompression failed: %v", ErrCorrupt, s.path, i, err)
	}
	// The stream must end exactly at ulen.
	if n, _ := fr.Read(make([]byte, 1)); n != 0 {
		return nil, fmt.Errorf("%w: %s: chunk %d longer than recorded", ErrCorrupt, s.path, i)
	}
	fr.Close()

	dc, err := parseChunk(payload, ref)
	if err != nil {
		return nil, fmt.Errorf("%s: chunk %d: %w", s.path, i, err)
	}
	if m := s.env.Met; m.Enabled() {
		m.Ckpt.ChunkLoads.Inc()
	}
	return dc, nil
}

// parseChunk decodes one uncompressed chunk payload, validating it
// against the index entry so a chunk whose CRC matches but whose
// content disagrees with the footer is still rejected.
func parseChunk(payload []byte, ref chunkRef) (*decodedChunk, error) {
	c := &cursor{b: payload}
	count := c.u32()
	if count != ref.count {
		return nil, fmt.Errorf("%w: page count %d disagrees with index (%d)", ErrCorrupt, count, ref.count)
	}
	dc := &decodedChunk{
		vaddrs: make([]uint64, count),
		tlens:  make([]uint16, count),
		offs:   make([]uint32, count),
	}
	for i := range dc.vaddrs {
		dc.vaddrs[i] = c.u64()
	}
	for i := range dc.tlens {
		dc.tlens[i] = c.u16()
	}
	var off uint32
	for i, t := range dc.tlens {
		dc.offs[i] = off
		off += uint32(t)
	}
	dc.data = c.take(int(off))
	if c.err || c.off != len(payload) {
		return nil, fmt.Errorf("%w: malformed chunk payload", ErrCorrupt)
	}
	for i, v := range dc.vaddrs {
		if i > 0 && v <= dc.vaddrs[i-1] {
			return nil, fmt.Errorf("%w: chunk vaddrs not ascending", ErrCorrupt)
		}
	}
	if dc.vaddrs[0] != ref.firstV || dc.vaddrs[count-1] != ref.lastV {
		return nil, fmt.Errorf("%w: chunk vaddr range disagrees with index", ErrCorrupt)
	}
	return dc, nil
}

func (s *Snapshot) degrade() {
	if !s.degraded.Swap(true) {
		if m := s.env.Met; m.Enabled() {
			m.Ckpt.Degrades.Inc()
		}
	}
}

// VerifyStats summarizes a full-file verification.
type VerifyStats struct {
	Chunks int
	Pages  uint64
	Bytes  int64
}

// Verify reads and checks every chunk of this file (not the chain):
// CRC, decompression, and payload-versus-index agreement. It bypasses
// the cache so every byte on disk is actually read.
func (s *Snapshot) Verify() (VerifyStats, error) {
	var vs VerifyStats
	st, err := s.f.Stat()
	if err != nil {
		return vs, fmt.Errorf("ckpt: stat: %v: %w", err, ErrIO)
	}
	vs.Bytes = st.Size()
	for i := range s.ft.chunks {
		dc, err := s.fetchChunk(i)
		if err != nil {
			return vs, err
		}
		vs.Chunks++
		vs.Pages += uint64(len(dc.vaddrs))
	}
	if vs.Pages != s.ft.totalPages {
		return vs, fmt.Errorf("%w: %s: %d page records found, footer says %d",
			ErrCorrupt, s.path, vs.Pages, s.ft.totalPages)
	}
	return vs, nil
}
