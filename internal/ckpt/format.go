// Package ckpt is the durable checkpoint subsystem: a chunked,
// compressed, CRC-protected on-disk snapshot format for a process's
// memory, written atomically (temp + fsync + rename) and restored
// lazily — pages fault in from the file on first touch, the
// fork-from-disk analogue of the COW fault machinery.
//
// File layout (all integers little-endian):
//
//	magic "ODFCKPT1"                                    8 bytes
//	chunk 0 .. chunk N-1      flate-compressed page-record groups
//	footer                    index + identity, CRC-protected
//	commit record             footerOff u64 | footerLen u32 |
//	                          footerCRC u32 | "ODFCMT1\n"   24 bytes
//
// The commit record is the last thing written before fsync+rename, so
// a reader that finds it intact (magic + footer CRC) knows the footer
// is complete, and the footer's per-chunk CRC32s vouch for every page
// byte — verified lazily at fault time, or eagerly by Verify. A
// crashed writer leaves either the old file or a temp file that fsck
// classifies: rejected when the commit record or any CRC is missing or
// wrong, restorable when the crash happened after the last write but
// before the rename.
//
// Chunk payload, before compression:
//
//	u32 count
//	count × u64 vaddr         ascending, page-aligned
//	count × u16 tlen          significant prefix length (0 = explicit
//	                          zero page; the record still shadows any
//	                          parent-snapshot content at that address)
//	concatenated page prefixes (tlen bytes each)
//
// Incremental snapshots record only the pages diverged from a parent
// snapshot and name that parent (file name + snapshot id) in the
// footer; OpenChain resolves and validates the chain.
package ckpt

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem/addr"
)

const (
	// Magic opens every checkpoint file.
	Magic = "ODFCKPT1"
	// commitMagic closes every committed checkpoint file.
	commitMagic = "ODFCMT1\n"
	// FormatVersion is written to the footer; readers reject others.
	FormatVersion = 1
	// PagesPerChunk bounds one chunk's page-record count. 64 pages
	// (256 KiB of payload) keeps a fault-time chunk load small while
	// amortizing compression and CRC over many pages.
	PagesPerChunk = 64
	// commitLen is the fixed size of the trailing commit record.
	commitLen = 8 + 4 + 4 + 8
	// maxChainDepth bounds incremental-parent resolution so a cyclic
	// or absurdly long chain is rejected instead of looping.
	maxChainDepth = 64
)

// VMARec describes one mapped region in the footer's VMA table —
// enough to rebuild the address-space layout at restore.
type VMARec struct {
	Start uint64
	Size  uint64
	Prot  uint8
	Flags uint8
}

// chunkRef is one footer index entry describing a written chunk.
type chunkRef struct {
	off    uint64 // file offset of the compressed chunk
	clen   uint32 // compressed length
	ulen   uint32 // uncompressed payload length
	crc    uint32 // CRC32 (IEEE) over the compressed bytes
	count  uint32 // page records in the chunk
	firstV uint64 // lowest vaddr in the chunk
	lastV  uint64 // highest vaddr in the chunk
}

// footer is the decoded footer block.
type footer struct {
	version    uint32
	snapID     [16]byte
	parentID   [16]byte
	parentRef  string // parent snapshot's file name (same directory)
	vmas       []VMARec
	totalPages uint64
	chunks     []chunkRef
}

func (ft *footer) encode() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, ft.version)
	b = append(b, ft.snapID[:]...)
	b = append(b, ft.parentID[:]...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(ft.parentRef)))
	b = append(b, ft.parentRef...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ft.vmas)))
	for _, v := range ft.vmas {
		b = binary.LittleEndian.AppendUint64(b, v.Start)
		b = binary.LittleEndian.AppendUint64(b, v.Size)
		b = append(b, v.Prot, v.Flags)
	}
	b = binary.LittleEndian.AppendUint64(b, ft.totalPages)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ft.chunks)))
	for _, c := range ft.chunks {
		b = binary.LittleEndian.AppendUint64(b, c.off)
		b = binary.LittleEndian.AppendUint32(b, c.clen)
		b = binary.LittleEndian.AppendUint32(b, c.ulen)
		b = binary.LittleEndian.AppendUint32(b, c.crc)
		b = binary.LittleEndian.AppendUint32(b, c.count)
		b = binary.LittleEndian.AppendUint64(b, c.firstV)
		b = binary.LittleEndian.AppendUint64(b, c.lastV)
	}
	return b
}

// cursor is a bounds-checked little-endian reader: decode paths must
// reject malformed footers, never slice out of range.
type cursor struct {
	b   []byte
	off int
	err bool
}

func (c *cursor) take(n int) []byte {
	if c.err || n < 0 || len(c.b)-c.off < n {
		c.err = true
		return nil
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s
}

func (c *cursor) u16() uint16 {
	if s := c.take(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

func (c *cursor) u32() uint32 {
	if s := c.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (c *cursor) u64() uint64 {
	if s := c.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

// decodeFooter parses and sanity-checks a footer block. dataEnd is the
// file offset where chunk data must end (the footer's own offset).
func decodeFooter(b []byte, dataEnd uint64) (*footer, error) {
	c := &cursor{b: b}
	ft := &footer{}
	ft.version = c.u32()
	copy(ft.snapID[:], c.take(16))
	copy(ft.parentID[:], c.take(16))
	ft.parentRef = string(c.take(int(c.u16())))
	nv := c.u32()
	if nv > 1<<20 {
		return nil, fmt.Errorf("%w: absurd VMA count %d", ErrCorrupt, nv)
	}
	for i := uint32(0); i < nv && !c.err; i++ {
		var v VMARec
		v.Start = c.u64()
		v.Size = c.u64()
		pf := c.take(2)
		if pf != nil {
			v.Prot, v.Flags = pf[0], pf[1]
		}
		ft.vmas = append(ft.vmas, v)
	}
	ft.totalPages = c.u64()
	nc := c.u32()
	if nc > 1<<28 {
		return nil, fmt.Errorf("%w: absurd chunk count %d", ErrCorrupt, nc)
	}
	for i := uint32(0); i < nc && !c.err; i++ {
		var ch chunkRef
		ch.off = c.u64()
		ch.clen = c.u32()
		ch.ulen = c.u32()
		ch.crc = c.u32()
		ch.count = c.u32()
		ch.firstV = c.u64()
		ch.lastV = c.u64()
		ft.chunks = append(ft.chunks, ch)
	}
	if c.err || c.off != len(b) {
		return nil, fmt.Errorf("%w: malformed footer", ErrCorrupt)
	}
	if ft.version != FormatVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, ft.version)
	}
	maxUlen := uint32(4 + PagesPerChunk*(8+2+addr.PageSize))
	prevLast := uint64(0)
	for i, ch := range ft.chunks {
		if ch.count == 0 || ch.count > PagesPerChunk {
			return nil, fmt.Errorf("%w: chunk %d: bad page count %d", ErrCorrupt, i, ch.count)
		}
		if ch.ulen > maxUlen {
			return nil, fmt.Errorf("%w: chunk %d: absurd payload length %d", ErrCorrupt, i, ch.ulen)
		}
		if ch.off < uint64(len(Magic)) || ch.off+uint64(ch.clen) > dataEnd || ch.off+uint64(ch.clen) < ch.off {
			return nil, fmt.Errorf("%w: chunk %d: out-of-bounds extent [%d,+%d)", ErrCorrupt, i, ch.off, ch.clen)
		}
		if ch.firstV > ch.lastV {
			return nil, fmt.Errorf("%w: chunk %d: inverted vaddr range", ErrCorrupt, i)
		}
		if i > 0 && ch.firstV <= prevLast {
			return nil, fmt.Errorf("%w: chunk %d: vaddr range overlaps predecessor", ErrCorrupt, i)
		}
		prevLast = ch.lastV
	}
	for i, v := range ft.vmas {
		if v.Start%addr.PageSize != 0 || v.Size == 0 || v.Size%addr.PageSize != 0 {
			return nil, fmt.Errorf("%w: VMA %d: unaligned extent", ErrCorrupt, i)
		}
		if v.Start+v.Size < v.Start {
			return nil, fmt.Errorf("%w: VMA %d: extent wraps", ErrCorrupt, i)
		}
	}
	return ft, nil
}
