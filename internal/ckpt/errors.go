package ckpt

import "errors"

// Sentinel errors, matched with errors.Is. They mirror the swap
// store's ErrSwapIO/ErrSwapCorrupt split: I/O failures are potentially
// transient and retried with backoff; corruption is a verdict — the
// bytes on disk do not match their recorded CRC and must never be
// handed to a restored process.
var (
	// ErrCorrupt means a structural or checksum mismatch anywhere in a
	// checkpoint file: missing commit record, bad footer CRC, torn
	// chunk, or a chain whose parent identity does not match.
	ErrCorrupt = errors.New("ckpt: checkpoint corrupt")
	// ErrIO means an I/O failure that persisted through the retry
	// ladder (reads) or aborted a write.
	ErrIO = errors.New("ckpt: checkpoint I/O failure")
	// ErrCrashed is returned by a Writer whose CrashOnInject option is
	// set when a failpoint fires: the writer simulated its own death
	// mid-write, leaving the temp file in whatever torn state the
	// crash point implies. Only the chaos harness sees this error.
	ErrCrashed = errors.New("ckpt: writer crashed at failpoint")
)
