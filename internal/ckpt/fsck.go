package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FsckReport is the verdict on one candidate checkpoint file. Exactly
// one of the two outcomes holds: Restorable (the file and its whole
// parent chain verified byte-for-byte against their CRCs) or rejected
// (Err names the precise first failure). There is no third state — a
// file fsck cannot positively verify must not be restored.
type FsckReport struct {
	Path       string `json:"path"`
	Restorable bool   `json:"restorable"`
	Err        string `json:"err,omitempty"`
	SnapID     string `json:"snap_id,omitempty"`
	ParentRef  string `json:"parent_ref,omitempty"`
	ChainLen   int    `json:"chain_len,omitempty"`
	Pages      uint64 `json:"pages,omitempty"` // this file's records
	Chunks     int    `json:"chunks,omitempty"`
	Bytes      int64  `json:"bytes,omitempty"`
}

// Fsck classifies one file: open, resolve the parent chain, and verify
// every chunk of every file in the chain eagerly. A temp file left by
// a crashed writer is a valid candidate — it is restorable exactly
// when the crash happened after the last content write (the commit
// record and all CRCs are intact), rejected otherwise.
func Fsck(path string, env Env) FsckReport {
	r := FsckReport{Path: path}
	if st, err := os.Stat(path); err == nil {
		r.Bytes = st.Size()
	}
	s, err := OpenChain(path, env)
	if err != nil {
		r.Err = err.Error()
		return r
	}
	defer s.Close()
	r.SnapID = fmt.Sprintf("%x", s.SnapID())
	r.ParentRef = s.ParentRef()
	r.ChainLen = s.ChainLen()
	for c := s; c != nil; c = c.Parent() {
		vs, err := c.Verify()
		if err != nil {
			r.Err = err.Error()
			return r
		}
		if c == s {
			r.Pages = vs.Pages
			r.Chunks = vs.Chunks
		}
	}
	r.Restorable = true
	return r
}

// FsckDir classifies every checkpoint candidate in a directory:
// *.ckpt files plus any *.tmp leftovers from crashed writers, sorted
// by name for a deterministic report.
func FsckDir(dir string, env Env) ([]FsckReport, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []FsckReport
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasSuffix(name, ".ckpt") && !strings.HasSuffix(name, ".tmp") {
			continue
		}
		out = append(out, Fsck(filepath.Join(dir, name), env))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
