// Package failpoint is a deterministic fault-injection registry for
// the simulated kernel's fallible paths: frame allocation, shard
// refill, the fork stages, fault resolution, swap-store I/O, and
// durable-checkpoint I/O.
//
// The design follows the trace-layer rule: when nothing is armed the
// per-site cost is a single atomic load (plus the nil-safe pointer
// load at the owning subsystem), so failpoints stay compiled into
// production paths. Sites guard with
//
//	if fp.Enabled() && fp.Fire(failpoint.PhysAlloc) { ...fail... }
//
// Every trigger draws from a per-point splitmix64 stream seeded from
// the registry seed, so a chaos run with a fixed seed reproduces the
// exact same fault schedule (the driver is sequential; concurrent
// callers still get a well-defined, race-free — if interleaving-
// dependent — stream).
package failpoint

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The catalog of failpoints. Set rejects names outside this list so a
// typo in a chaos schedule fails loudly instead of silently injecting
// nothing.
const (
	PhysAlloc       = "phys.alloc"        // TryAlloc returns ErrNoMemory
	PhysAllocHuge   = "phys.alloc-huge"   // AllocHuge fails with ErrNoMemory
	PhysShardRefill = "phys.shard-refill" // batched shard refill degrades to a single frame
	ForkWalk        = "fork.walk"         // upper-level table allocation during the fork walk
	ForkShare       = "fork.share"        // per-slot PTE-table share (on-demand engine)
	ForkRefcount    = "fork.refcount"     // per-slot PTE-table copy/refcount (classic engine)
	FaultTableCopy  = "fault.table-copy"  // COW split of a shared PTE table
	FaultPMDSplit   = "fault.pmd-split"   // private copy of a shared PMD table (§4)
	FaultHugeCopy   = "fault.huge-copy"   // 2 MiB COW copy
	FaultPageCopy   = "fault.page-copy"   // 4 KiB COW copy
	SwapRead        = "swap.read"         // swap-store Read fails with an I/O error
	SwapWrite       = "swap.write"        // swap-store Write fails with an I/O error
	SwapFree        = "swap.free"         // swap-store Free needs retries
	SwapCorrupt     = "swap.corrupt"      // swap-out records a poisoned checksum
	KswapdPanic     = "kswapd.panic"      // kswapd balance pass panics
	CkptWrite       = "ckpt.write"        // checkpoint chunk write fails with an I/O error
	CkptFsync       = "ckpt.fsync"        // checkpoint fsync-before-rename fails
	CkptRead        = "ckpt.read"         // checkpoint chunk read fails with an I/O error
	CkptCorrupt     = "ckpt.corrupt"      // committed checkpoint bytes are flipped on disk
)

// catalog fixes the order used by indices, Status, and trace events.
var catalog = []string{
	PhysAlloc, PhysAllocHuge, PhysShardRefill,
	ForkWalk, ForkShare, ForkRefcount,
	FaultTableCopy, FaultPMDSplit, FaultHugeCopy, FaultPageCopy,
	SwapRead, SwapWrite, SwapFree, SwapCorrupt,
	KswapdPanic,
	CkptWrite, CkptFsync, CkptRead, CkptCorrupt,
}

// Catalog returns the full failpoint name list in index order.
func Catalog() []string {
	out := make([]string, len(catalog))
	copy(out, catalog)
	return out
}

// Index returns the catalog index for name, or -1 if unknown.
func Index(name string) int {
	for i, n := range catalog {
		if n == name {
			return i
		}
	}
	return -1
}

// PointName returns the catalog name for an index (e.g. from a trace
// event argument), or "?" if out of range.
func PointName(idx int) string {
	if idx < 0 || idx >= len(catalog) {
		return "?"
	}
	return catalog[idx]
}

type triggerMode int32

const (
	modeOff triggerMode = iota
	modeOnce
	modeEvery
	modeProb
)

type point struct {
	mode   atomic.Int32
	arg    atomic.Uint64 // every: period; prob: threshold on a uint64 draw
	evals  atomic.Uint64 // evaluation counter for every-N
	prng   atomic.Uint64 // splitmix64 state
	checks atomic.Uint64
	fires  atomic.Uint64
}

type observer struct{ fn func(name string, index int) }

// Registry holds the process-wide failpoint state. The zero value is
// not usable; construct with New. All methods are safe on a nil
// receiver (Enabled reports false, Fire never fires) so subsystems can
// hold an unset atomic pointer exactly like the tracer and metrics
// hooks.
type Registry struct {
	armed  atomic.Int64 // number of points whose mode != off
	seed   atomic.Uint64
	total  atomic.Uint64
	scope  atomic.Uint64 // tenant id injection is restricted to (0 = everywhere)
	obs    atomic.Pointer[observer]
	mu     sync.Mutex // serializes Set/Reseed/Reset (not Fire)
	points []point    // len(catalog), indexed by catalog order
}

// New builds a registry with every point off, seeded for
// reproducibility. The same seed and the same sequence of Fire calls
// produce the same fault schedule.
func New(seed uint64) *Registry {
	r := &Registry{points: make([]point, len(catalog))}
	r.reseedLocked(seed)
	return r
}

// Enabled reports whether any failpoint is armed. One atomic load;
// nil-safe.
func (r *Registry) Enabled() bool {
	return r != nil && r.armed.Load() > 0
}

// Seed returns the current PRNG seed.
func (r *Registry) Seed() uint64 {
	if r == nil {
		return 0
	}
	return r.seed.Load()
}

// TotalFires returns the number of faults injected since the last
// Reset/Reseed.
func (r *Registry) TotalFires() uint64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Fires returns the fire count for one point.
func (r *Registry) Fires(name string) uint64 {
	if r == nil {
		return 0
	}
	if i := Index(name); i >= 0 {
		return r.points[i].fires.Load()
	}
	return 0
}

// SetObserver installs fn to be called on every injected fault (after
// the counters are updated). Used by the kernel to emit trace events;
// fn must not call back into the registry's Set methods.
func (r *Registry) SetObserver(fn func(name string, index int)) {
	if fn == nil {
		r.obs.Store(nil)
		return
	}
	r.obs.Store(&observer{fn: fn})
}

// Fire evaluates the named failpoint and reports whether the site
// should fail. Unknown names never fire. Cheap when the point is off;
// callers gate on Enabled() first so the disabled-registry cost stays
// at one atomic load.
//
// Fire is the unattributed form: the site does not know which tenant's
// work it is doing. When a tenant scope is set, unattributed sites
// never fire.
func (r *Registry) Fire(name string) bool {
	return r.FireAs(name, 0)
}

// SetScope restricts injection to sites attributed to the given tenant
// id. 0 restores the default: every armed site fires. Out-of-scope
// evaluations return before touching the point's counters or PRNG
// stream, so the in-scope fault schedule for a fixed seed is identical
// whether or not other tenants are running.
func (r *Registry) SetScope(tenant uint64) {
	if r == nil {
		return
	}
	r.scope.Store(tenant)
}

// Scope returns the tenant id injection is restricted to (0 = none).
func (r *Registry) Scope() uint64 {
	if r == nil {
		return 0
	}
	return r.scope.Load()
}

// FireAs evaluates the named failpoint on behalf of the given tenant
// (0 = unattributed). When a scope is set, only matching tenants can
// fire.
func (r *Registry) FireAs(name string, tenant uint64) bool {
	if r == nil {
		return false
	}
	i := Index(name)
	if i < 0 {
		return false
	}
	p := &r.points[i]
	m := triggerMode(p.mode.Load())
	if m == modeOff {
		return false
	}
	if s := r.scope.Load(); s != 0 && tenant != s {
		return false
	}
	p.checks.Add(1)
	hit := false
	switch m {
	case modeOnce:
		// CAS the mode back to off so exactly one caller wins.
		if p.mode.CompareAndSwap(int32(modeOnce), int32(modeOff)) {
			r.armed.Add(-1)
			hit = true
		}
	case modeEvery:
		n := p.arg.Load()
		if n > 0 && p.evals.Add(1)%n == 0 {
			hit = true
		}
	case modeProb:
		hit = splitmix64(&p.prng) < p.arg.Load()
	}
	if hit {
		p.fires.Add(1)
		r.total.Add(1)
		if o := r.obs.Load(); o != nil {
			o.fn(name, i)
		}
	}
	return hit
}

// Set arms or disarms a failpoint. Specs:
//
//	off       — disarm
//	once      — fire on the next evaluation, then disarm
//	every:N   — fire on every N-th evaluation (N ≥ 1)
//	prob:P    — fire with probability P per evaluation (0 < P ≤ 1)
func (r *Registry) Set(name, spec string) error {
	if r == nil {
		return fmt.Errorf("failpoint: nil registry")
	}
	i := Index(name)
	if i < 0 {
		return fmt.Errorf("failpoint: unknown point %q", name)
	}
	m, arg, err := parseSpec(spec)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &r.points[i]
	was := triggerMode(p.mode.Load())
	p.arg.Store(arg)
	p.evals.Store(0)
	p.mode.Store(int32(m))
	switch {
	case was == modeOff && m != modeOff:
		r.armed.Add(1)
	case was != modeOff && m == modeOff:
		r.armed.Add(-1)
	}
	return nil
}

func parseSpec(spec string) (triggerMode, uint64, error) {
	switch {
	case spec == "off":
		return modeOff, 0, nil
	case spec == "once":
		return modeOnce, 0, nil
	case strings.HasPrefix(spec, "every:"):
		n, err := strconv.ParseUint(spec[len("every:"):], 10, 64)
		if err != nil || n == 0 {
			return 0, 0, fmt.Errorf("failpoint: bad spec %q (want every:N, N ≥ 1)", spec)
		}
		return modeEvery, n, nil
	case strings.HasPrefix(spec, "prob:"):
		p, err := strconv.ParseFloat(spec[len("prob:"):], 64)
		if err != nil || p <= 0 || p > 1 {
			return 0, 0, fmt.Errorf("failpoint: bad spec %q (want prob:P, 0 < P ≤ 1)", spec)
		}
		if p == 1 {
			return modeProb, math.MaxUint64, nil
		}
		return modeProb, uint64(p * float64(1<<63) * 2), nil
	default:
		return 0, 0, fmt.Errorf("failpoint: bad spec %q (want off|once|every:N|prob:P)", spec)
	}
}

// Reseed resets every PRNG stream and counter to a fresh seed, keeping
// the armed specs. Use before a reproducible chaos phase.
func (r *Registry) Reseed(seed uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reseedLocked(seed)
}

func (r *Registry) reseedLocked(seed uint64) {
	r.seed.Store(seed)
	r.total.Store(0)
	for i := range r.points {
		p := &r.points[i]
		// Decorrelate the per-point streams: golden-ratio offsets
		// through the seed space, then one mix round.
		s := seed + uint64(i+1)*0x9E3779B97F4A7C15
		p.prng.Store(s)
		p.evals.Store(0)
		p.checks.Store(0)
		p.fires.Store(0)
	}
}

// Reset disarms every point and zeroes all counters (seed preserved).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.points {
		p := &r.points[i]
		if triggerMode(p.mode.Load()) != modeOff {
			r.armed.Add(-1)
		}
		p.mode.Store(int32(modeOff))
		p.arg.Store(0)
	}
	r.scope.Store(0)
	r.reseedLocked(r.seed.Load())
}

// Status renders the registry in /proc style: a header with the seed
// and armed count, then one line per catalog point.
func (r *Registry) Status() string {
	var b strings.Builder
	if r == nil {
		b.WriteString("# odf failpoints: registry detached\n")
		return b.String()
	}
	fmt.Fprintf(&b, "# odf failpoints: seed=%d armed=%d injected=%d\n",
		r.seed.Load(), r.armed.Load(), r.total.Load())
	if s := r.scope.Load(); s != 0 {
		fmt.Fprintf(&b, "# scope: tenant %d\n", s)
	}
	for i, name := range catalog {
		p := &r.points[i]
		fmt.Fprintf(&b, "%-17s %-12s checks=%d fires=%d\n",
			name, specString(triggerMode(p.mode.Load()), p.arg.Load()),
			p.checks.Load(), p.fires.Load())
	}
	return b.String()
}

func specString(m triggerMode, arg uint64) string {
	switch m {
	case modeOnce:
		return "once"
	case modeEvery:
		return fmt.Sprintf("every:%d", arg)
	case modeProb:
		return fmt.Sprintf("prob:%.4g", float64(arg)/(float64(1<<63)*2))
	default:
		return "off"
	}
}

// splitmix64 advances the state atomically and returns the next draw.
// The atomic add means concurrent callers each see a distinct state;
// under a sequential driver the stream is fully deterministic.
func splitmix64(state *atomic.Uint64) uint64 {
	z := state.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
