package failpoint

import (
	"strings"
	"sync"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	r := New(1)
	if r.Enabled() {
		t.Fatal("fresh registry reports Enabled")
	}
	if r.Fire(PhysAlloc) {
		t.Fatal("unarmed point fired")
	}
	var nilReg *Registry
	if nilReg.Enabled() || nilReg.Fire(PhysAlloc) {
		t.Fatal("nil registry enabled or fired")
	}
	if nilReg.TotalFires() != 0 || nilReg.Seed() != 0 || nilReg.Fires(PhysAlloc) != 0 {
		t.Fatal("nil registry counters non-zero")
	}
	nilReg.Reset() // must not panic
}

func TestOnceFiresExactlyOnce(t *testing.T) {
	r := New(1)
	if err := r.Set(SwapRead, "once"); err != nil {
		t.Fatal(err)
	}
	if !r.Enabled() {
		t.Fatal("armed registry reports disabled")
	}
	fires := 0
	for i := 0; i < 10; i++ {
		if r.Fire(SwapRead) {
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("once fired %d times", fires)
	}
	if r.Enabled() {
		t.Fatal("once did not disarm after firing")
	}
	if r.TotalFires() != 1 || r.Fires(SwapRead) != 1 {
		t.Fatalf("counters: total=%d point=%d", r.TotalFires(), r.Fires(SwapRead))
	}
}

func TestEveryNth(t *testing.T) {
	r := New(1)
	if err := r.Set(ForkShare, "every:3"); err != nil {
		t.Fatal(err)
	}
	var got []int
	for i := 1; i <= 9; i++ {
		if r.Fire(ForkShare) {
			got = append(got, i)
		}
	}
	want := []int{3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("every:3 fired at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("every:3 fired at %v, want %v", got, want)
		}
	}
	// every:1 fires always.
	if err := r.Set(ForkShare, "every:1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !r.Fire(ForkShare) {
			t.Fatal("every:1 missed")
		}
	}
}

func TestProbabilityDeterministicAndCalibrated(t *testing.T) {
	const n = 100000
	run := func(seed uint64) int {
		r := New(seed)
		if err := r.Set(PhysAlloc, "prob:0.01"); err != nil {
			t.Fatal(err)
		}
		fires := 0
		for i := 0; i < n; i++ {
			if r.Fire(PhysAlloc) {
				fires++
			}
		}
		return fires
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed, different schedules: %d vs %d", a, b)
	}
	// ~1000 expected; allow a wide band.
	if a < 700 || a > 1300 {
		t.Fatalf("prob:0.01 fired %d/%d times", a, n)
	}
	if c := run(43); c == a {
		t.Fatalf("different seeds produced identical fire count %d (suspicious)", c)
	}
	// prob:1 always fires.
	r := New(1)
	if err := r.Set(PhysAlloc, "prob:1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !r.Fire(PhysAlloc) {
			t.Fatal("prob:1 missed")
		}
	}
}

func TestSetValidation(t *testing.T) {
	r := New(1)
	for _, bad := range []struct{ name, spec string }{
		{"no.such.point", "once"},
		{PhysAlloc, "sometimes"},
		{PhysAlloc, "every:0"},
		{PhysAlloc, "every:x"},
		{PhysAlloc, "prob:0"},
		{PhysAlloc, "prob:1.5"},
		{PhysAlloc, "prob:x"},
		{PhysAlloc, ""},
	} {
		if err := r.Set(bad.name, bad.spec); err == nil {
			t.Errorf("Set(%q, %q) accepted", bad.name, bad.spec)
		}
	}
	if r.Enabled() {
		t.Fatal("failed Sets armed the registry")
	}
	var nilReg *Registry
	if err := nilReg.Set(PhysAlloc, "once"); err == nil {
		t.Fatal("nil registry Set succeeded")
	}
}

func TestResetAndReseed(t *testing.T) {
	r := New(7)
	if err := r.Set(SwapWrite, "every:1"); err != nil {
		t.Fatal(err)
	}
	r.Fire(SwapWrite)
	r.Reset()
	if r.Enabled() || r.TotalFires() != 0 || r.Fires(SwapWrite) != 0 {
		t.Fatal("Reset left state behind")
	}
	if r.Seed() != 7 {
		t.Fatalf("Reset changed seed to %d", r.Seed())
	}
	r.Reseed(9)
	if r.Seed() != 9 {
		t.Fatalf("Reseed: seed = %d", r.Seed())
	}
}

func TestObserver(t *testing.T) {
	r := New(1)
	var mu sync.Mutex
	var names []string
	var idxs []int
	r.SetObserver(func(name string, index int) {
		mu.Lock()
		names = append(names, name)
		idxs = append(idxs, index)
		mu.Unlock()
	})
	if err := r.Set(KswapdPanic, "once"); err != nil {
		t.Fatal(err)
	}
	r.Fire(KswapdPanic)
	r.Fire(KswapdPanic)
	if len(names) != 1 || names[0] != KswapdPanic {
		t.Fatalf("observer saw %v", names)
	}
	if PointName(idxs[0]) != KswapdPanic {
		t.Fatalf("index %d does not map back to %s", idxs[0], KswapdPanic)
	}
	r.SetObserver(nil) // must not panic on later fires
	if err := r.Set(KswapdPanic, "once"); err != nil {
		t.Fatal(err)
	}
	r.Fire(KswapdPanic)
}

func TestCatalogAndStatus(t *testing.T) {
	names := Catalog()
	if len(names) == 0 {
		t.Fatal("empty catalog")
	}
	seen := map[string]bool{}
	for i, n := range names {
		if seen[n] {
			t.Fatalf("duplicate catalog entry %q", n)
		}
		seen[n] = true
		if Index(n) != i {
			t.Fatalf("Index(%q) = %d, want %d", n, Index(n), i)
		}
		if PointName(i) != n {
			t.Fatalf("PointName(%d) = %q, want %q", i, PointName(i), n)
		}
	}
	if Index("nope") != -1 || PointName(-1) != "?" || PointName(len(names)) != "?" {
		t.Fatal("unknown lookups not rejected")
	}

	r := New(5)
	if err := r.Set(FaultPageCopy, "prob:0.25"); err != nil {
		t.Fatal(err)
	}
	r.Fire(FaultPageCopy)
	s := r.Status()
	if !strings.Contains(s, "seed=5") || !strings.Contains(s, "armed=1") {
		t.Fatalf("status header:\n%s", s)
	}
	if !strings.Contains(s, "prob:0.25") {
		t.Fatalf("status missing armed spec:\n%s", s)
	}
	for _, n := range names {
		if !strings.Contains(s, n) {
			t.Fatalf("status missing %s:\n%s", n, s)
		}
	}
	var nilReg *Registry
	if !strings.Contains(nilReg.Status(), "detached") {
		t.Fatal("nil status")
	}
}

func TestConcurrentFireOnce(t *testing.T) {
	r := New(1)
	if err := r.Set(PhysAlloc, "once"); err != nil {
		t.Fatal(err)
	}
	var fires, wg = make(chan bool, 64), sync.WaitGroup{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if r.Fire(PhysAlloc) {
					fires <- true
				}
			}
		}()
	}
	wg.Wait()
	close(fires)
	n := 0
	for range fires {
		n++
	}
	if n != 1 {
		t.Fatalf("once fired %d times under concurrency", n)
	}
}
