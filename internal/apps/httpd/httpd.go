// Package httpd implements the Apache-prefork workload of §5.3.5
// (Tables 6–7): a control process with a small (~7 MiB) mapped
// configuration forks a pool of worker processes at startup; requests
// are then served by the workers. Because the master's footprint is
// tiny and forks happen only at startup, on-demand-fork is expected to
// make no measurable difference — the paper's negative result.
package httpd

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/stats"
)

// Config sizes the server.
type Config struct {
	ConfigBytes uint64 // master's mapped configuration (paper: 7 MiB)
	Workers     int    // prefork pool size
	Mode        core.ForkMode
	// MaxRequestsPerChild recycles a worker (exit + fork a replacement
	// from the master) after serving this many requests, like Apache's
	// directive of the same name. Zero disables recycling.
	MaxRequestsPerChild int
}

// Server is the prefork master plus its worker pool.
type Server struct {
	kern    *kernel.Kernel
	master  *kernel.Process
	cfgBase addr.V
	cfgSize uint64
	workers []*worker
	next    int
	mode    core.ForkMode
	maxReq  int

	// StartupForkTimes records the per-worker fork latency at boot.
	StartupForkTimes stats.Sample
	// Recycles counts workers replaced due to MaxRequestsPerChild.
	Recycles int
}

type worker struct {
	proc    *kernel.Process
	scratch addr.V // worker-private response buffer
	served  int
}

const scratchSize = 16 * addr.PageSize

// Start boots the master, loads its configuration, and preforks the
// worker pool.
func Start(k *kernel.Kernel, cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("httpd: need at least one worker")
	}
	master := k.NewProcess()
	base, err := master.Mmap(cfg.ConfigBytes, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		master.Exit()
		return nil, err
	}
	// "Read the configuration": fill it with deterministic content the
	// workers will consult per request.
	page := make([]byte, addr.PageSize)
	for off := uint64(0); off < cfg.ConfigBytes; off += addr.PageSize {
		binary.LittleEndian.PutUint64(page, off)
		for i := 8; i < len(page); i++ {
			page[i] = byte(off>>12) + byte(i)
		}
		if err := master.WriteAt(page, base+addr.V(off)); err != nil {
			master.Exit()
			return nil, err
		}
	}

	s := &Server{
		kern: k, master: master, cfgBase: base, cfgSize: cfg.ConfigBytes,
		mode: cfg.Mode, maxReq: cfg.MaxRequestsPerChild,
	}
	for i := 0; i < cfg.Workers; i++ {
		t0 := time.Now()
		w, err := s.spawnWorker()
		s.StartupForkTimes.AddDuration(time.Since(t0))
		if err != nil {
			s.Stop()
			return nil, err
		}
		s.workers = append(s.workers, w)
	}
	return s, nil
}

// spawnWorker forks a fresh worker from the master.
func (s *Server) spawnWorker() (*worker, error) {
	proc, err := s.master.Fork(kernel.WithMode(s.mode))
	if err != nil {
		return nil, err
	}
	scratch, err := proc.Mmap(scratchSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
	if err != nil {
		proc.Exit()
		return nil, err
	}
	return &worker{proc: proc, scratch: scratch}, nil
}

// Workers returns the pool size.
func (s *Server) Workers() int { return len(s.workers) }

// Master returns the control process — the fork source for workers and
// the natural target for a Snapshotter (a periodic scoreboard dump or
// graceful-restart probe).
func (s *Server) Master() *kernel.Process { return s.master }

// Stop terminates the pool and the master.
func (s *Server) Stop() {
	for _, w := range s.workers {
		w.proc.Exit()
	}
	s.workers = nil
	s.master.Exit()
}

// Handle serves one request on the next worker (round-robin) and
// returns the response. The handler hashes the request, reads a few
// configuration pages the hash selects (shared, inherited through
// fork), and writes a response into the worker's private buffer —
// request-isolated work in the spirit of the prefork MPM.
func (s *Server) Handle(req []byte) ([]byte, error) {
	i := s.next % len(s.workers)
	w := s.workers[i]
	s.next++
	if s.maxReq > 0 && w.served >= s.maxReq {
		// Apache's MaxRequestsPerChild: retire the worker and prefork a
		// replacement from the master.
		nw, err := s.spawnWorker()
		if err != nil {
			return nil, err
		}
		w.proc.Exit()
		s.workers[i] = nw
		s.Recycles++
		w = nw
	}
	w.served++

	h := fnv(req)
	var acc uint64
	var pg [64]byte
	for i := 0; i < 4; i++ {
		off := (h + uint64(i)*0x9E3779B97F4A7C15) % (s.cfgSize - 64)
		if err := w.proc.ReadAt(pg[:], s.cfgBase+addr.V(off)); err != nil {
			return nil, err
		}
		acc ^= binary.LittleEndian.Uint64(pg[:])
	}
	resp := make([]byte, 128)
	copy(resp, "HTTP/1.1 200 OK\r\ncontent: ")
	binary.LittleEndian.PutUint64(resp[32:], acc)
	copy(resp[40:], req)
	if err := w.proc.WriteAt(resp, w.scratch); err != nil {
		return nil, err
	}
	// Echo back from the worker's memory, as a socket write would.
	out := make([]byte, len(resp))
	if err := w.proc.ReadAt(out, w.scratch); err != nil {
		return nil, err
	}
	return out, nil
}

func fnv(p []byte) uint64 {
	var x uint64 = 14695981039346656037
	for _, b := range p {
		x ^= uint64(b)
		x *= 1099511628211
	}
	return x
}

// BenchResult is the Tables 6–7 output for one engine.
type BenchResult struct {
	Mode        core.ForkMode
	MeanUS      float64
	MaxUS       float64
	Percentiles map[float64]float64 // percentile -> latency µs
	StartupMS   float64             // total prefork time at boot
}

// BenchPercentiles are the Table 7 rows.
var BenchPercentiles = []float64{50, 75, 90, 99}

// RunBench starts a server with the given engine, replays n requests,
// and reports client-observed latency, mirroring the wrk run taken
// immediately after server start.
func RunBench(k *kernel.Kernel, cfg Config, n int) (BenchResult, error) {
	s, err := Start(k, cfg)
	if err != nil {
		return BenchResult{}, err
	}
	defer s.Stop()

	var lat stats.Sample
	req := make([]byte, 64)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(req, uint64(i))
		t0 := time.Now()
		if _, err := s.Handle(req); err != nil {
			return BenchResult{}, err
		}
		lat.Add(float64(time.Since(t0)) / float64(time.Microsecond))
	}
	res := BenchResult{
		Mode:        cfg.Mode,
		MeanUS:      lat.Mean(),
		MaxUS:       lat.Max(),
		Percentiles: make(map[float64]float64, len(BenchPercentiles)),
		StartupMS:   s.StartupForkTimes.Mean() * float64(s.StartupForkTimes.N()),
	}
	for _, p := range BenchPercentiles {
		res.Percentiles[p] = lat.Percentile(p)
	}
	return res, nil
}
