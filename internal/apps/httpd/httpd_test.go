package httpd

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
)

func testConfig(mode core.ForkMode) Config {
	return Config{
		ConfigBytes: 4 * addr.PTECoverage, // ~8 MiB, close to Apache's 7
		Workers:     4,
		Mode:        mode,
	}
}

func TestStartAndStop(t *testing.T) {
	k := kernel.New()
	s, err := Start(k, testConfig(core.ForkClassic))
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 4 {
		t.Errorf("Workers = %d", s.Workers())
	}
	if k.NumProcesses() != 5 { // master + 4 workers
		t.Errorf("processes = %d", k.NumProcesses())
	}
	if s.StartupForkTimes.N() != 4 {
		t.Errorf("startup forks recorded = %d", s.StartupForkTimes.N())
	}
	s.Stop()
	if k.NumProcesses() != 0 {
		t.Errorf("processes after stop = %d", k.NumProcesses())
	}
	if n := k.Allocator().Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestZeroWorkersRejected(t *testing.T) {
	k := kernel.New()
	if _, err := Start(k, Config{ConfigBytes: addr.PTECoverage, Workers: 0}); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestHandleDeterministicAndDistributed(t *testing.T) {
	k := kernel.New()
	s, err := Start(k, testConfig(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// The same request served by different workers must produce the
	// same response: the configuration is inherited identically.
	req := []byte("GET /index.html")
	var responses [][]byte
	for i := 0; i < s.Workers(); i++ {
		resp, err := s.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		responses = append(responses, resp)
	}
	for i := 1; i < len(responses); i++ {
		if !bytes.Equal(responses[0], responses[i]) {
			t.Errorf("worker %d response differs", i)
		}
	}
	if !bytes.Contains(responses[0], []byte("200 OK")) {
		t.Error("response missing status line")
	}
}

func TestWorkerIsolation(t *testing.T) {
	// A worker writing its scratch must not disturb another worker's
	// view of the shared configuration (prefork request isolation).
	k := kernel.New()
	s, err := Start(k, testConfig(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	r1, err := s.Handle([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Handle([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := s.Handle([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Error("identical request served differently after interleaved traffic")
	}
}

func TestRunBenchBothModes(t *testing.T) {
	k := kernel.New()
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		res, err := RunBench(k, testConfig(mode), 200)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.MeanUS <= 0 || res.MaxUS < res.MeanUS {
			t.Errorf("%v: implausible latencies %+v", mode, res)
		}
		for _, p := range BenchPercentiles {
			if res.Percentiles[p] <= 0 {
				t.Errorf("%v: P%v = %f", mode, p, res.Percentiles[p])
			}
		}
		if res.StartupMS <= 0 {
			t.Errorf("%v: startup = %f", mode, res.StartupMS)
		}
	}
	if n := k.Allocator().Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestMaxRequestsPerChildRecycling(t *testing.T) {
	k := kernel.New()
	cfg := testConfig(core.ForkOnDemand)
	cfg.Workers = 2
	cfg.MaxRequestsPerChild = 3
	s, err := Start(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	req := []byte("GET /recycle")
	var first []byte
	for i := 0; i < 20; i++ {
		resp, err := s.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = resp
		} else if !bytes.Equal(first, resp) {
			t.Fatalf("response changed after recycling at request %d", i)
		}
	}
	if s.Recycles == 0 {
		t.Error("no workers recycled")
	}
	// Pool size is stable and no process leaks beyond master+workers.
	if k.NumProcesses() != 3 {
		t.Errorf("processes = %d, want master+2 workers", k.NumProcesses())
	}
}
