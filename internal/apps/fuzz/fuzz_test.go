package fuzz

import (
	"testing"
	"time"

	"repro/internal/apps/sqlike"
	"repro/internal/core"
	"repro/internal/kernel"
)

func testConfig(mode core.ForkMode) Config {
	return Config{
		DB:      sqlike.Config{ArenaBytes: 1 << 24, MaxItems: 20000, MaxTags: 1000},
		Items:   2000,
		NameLen: 8,
		Mode:    mode,
		Seed:    42,
	}
}

func TestCoverageBitmap(t *testing.T) {
	var c Coverage
	if c.CountBits() != 0 {
		t.Error("fresh bitmap non-empty")
	}
	prev := c.Hit(0, 100)
	if prev != 100 {
		t.Errorf("Hit returned %d", prev)
	}
	c.Hit(prev, 200)
	if c.CountBits() != 2 {
		t.Errorf("CountBits = %d", c.CountBits())
	}
	var global Coverage
	if !c.MergeInto(&global) {
		t.Error("first merge found nothing new")
	}
	if c.MergeInto(&global) {
		t.Error("second merge found new edges")
	}
	c.Reset()
	if c.CountBits() != 0 {
		t.Error("Reset failed")
	}
}

func TestCoverageSaturation(t *testing.T) {
	var c Coverage
	for i := 0; i < 300; i++ {
		c.Hit(0, 5)
	}
	if c.CountBits() != 1 {
		t.Error("repeated edge counted multiple bits")
	}
}

func TestRunTargetDeterministicCoverage(t *testing.T) {
	k := kernel.New()
	p := k.NewProcess()
	defer p.Exit()
	db, err := sqlike.New(p, sqlike.Config{ArenaBytes: 1 << 22, MaxItems: 5000, MaxTags: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Load(500, 8, 50); err != nil {
		t.Fatal(err)
	}
	// Read-only input: mutating opcodes would legitimately change the
	// second run's outcome edges on the same database.
	input := []byte{Magic[0], Magic[1], opSelect, 10, 0, 20, 0, 5, 0, opCount, 3, 0, 7, 0}
	var c1, c2 Coverage
	if err := RunTarget(db, input, &c1); err != nil {
		t.Fatal(err)
	}
	if err := RunTarget(db, input, &c2); err != nil {
		t.Fatal(err)
	}
	if c1.CountBits() == 0 {
		t.Error("no coverage recorded")
	}
	if c1.bits != c2.bits {
		t.Error("coverage not deterministic for identical input+state")
	}
	// A different input should (for these opcodes) hit different edges.
	var c3 Coverage
	if err := RunTarget(db, []byte{Magic[0], Magic[1], opDelete, 1, 0}, &c3); err != nil {
		t.Fatal(err)
	}
	if c3.bits == c1.bits {
		t.Error("distinct inputs produced identical coverage")
	}
}

func TestRunTargetEmptyAndGarbage(t *testing.T) {
	k := kernel.New()
	p := k.NewProcess()
	defer p.Exit()
	db, _ := sqlike.New(p, sqlike.Config{ArenaBytes: 1 << 22, MaxItems: 100, MaxTags: 10})
	var cov Coverage
	if err := RunTarget(db, nil, &cov); err != nil {
		t.Errorf("empty input: %v", err)
	}
	garbage := make([]byte, 200)
	for i := range garbage {
		garbage[i] = byte(i * 37)
	}
	if err := RunTarget(db, garbage, &cov); err != nil {
		t.Errorf("garbage input: %v", err)
	}
}

func TestFuzzerIsolation(t *testing.T) {
	// Destructive inputs (DELETE/UPDATE/INSERT) run in children; the
	// fork server's database must be unchanged afterwards.
	k := kernel.New()
	f, err := NewFuzzer(k, testConfig(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	before, err := f.db.CountItems(func(sqlike.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunN(30); err != nil {
		t.Fatal(err)
	}
	after, err := f.db.CountItems(func(sqlike.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("fork server DB mutated: %d -> %d rows", before, after)
	}
	if f.Execs != 30 {
		t.Errorf("Execs = %d", f.Execs)
	}
	if f.GlobalEdges() == 0 {
		t.Error("no edges discovered")
	}
	if f.CorpusSize() < int(opLast) {
		t.Error("corpus shrank below seeds")
	}
}

func TestFuzzerNoLeaks(t *testing.T) {
	k := kernel.New()
	f, err := NewFuzzer(k, testConfig(core.ForkClassic))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunN(10); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n := k.Allocator().Allocated(); n != 0 {
		t.Errorf("leak after fuzzing session: %d frames", n)
	}
}

func TestFuzzerODFFasterThanClassic(t *testing.T) {
	// The Figure 9 shape at test scale: with a non-trivial database the
	// ODF fork server must complete the same executions in less time.
	if testing.Short() {
		t.Skip("throughput comparison in -short mode")
	}
	// Large mapped arena (drives fork cost) with few rows (cheap
	// target scans), so the engines' fork costs dominate the comparison.
	k := kernel.New()
	cfg := testConfig(core.ForkClassic)
	cfg.DB.ArenaBytes = 1 << 27
	cfg.Items = 500
	fc, err := NewFuzzer(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tClassic := timedRun(t, fc, 40)
	fc.Close()

	cfg.Mode = core.ForkOnDemand
	fo, err := NewFuzzer(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tODF := timedRun(t, fo, 40)
	fo.Close()

	if tODF >= tClassic {
		t.Errorf("ODF fuzzing (%v) not faster than classic (%v)", tODF, tClassic)
	}
}

func timedRun(t *testing.T, f *Fuzzer, n int) int64 {
	t.Helper()
	start := nowNanos()
	if err := f.RunN(n); err != nil {
		t.Fatal(err)
	}
	return nowNanos() - start
}

func nowNanos() int64 { return time.Now().UnixNano() }

func TestDeterministicStage(t *testing.T) {
	k := kernel.New()
	f, err := NewFuzzer(k, testConfig(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.PendingDeterministic() != int(opLast) {
		t.Fatalf("pending det = %d, want %d seeds", f.PendingDeterministic(), opLast)
	}
	// The first inputs must be single-bitflips of seed 0, in order,
	// skipping the 16 magic-header bits.
	seed0 := append([]byte(nil), f.corpus[0]...)
	in1 := f.nextInput()
	if len(in1) != len(seed0) {
		t.Fatalf("det input length changed")
	}
	diff := 0
	for i := range in1 {
		if in1[i] != seed0[i] {
			diff++
			if i < 2 {
				t.Error("deterministic stage flipped the magic header")
			}
		}
	}
	if diff != 1 {
		t.Errorf("det input differs in %d bytes, want 1", diff)
	}
	in2 := f.nextInput()
	if in2[2] == in1[2] && in2[3] == in1[3] {
		// Byte 2 bit advanced; inputs must differ from each other.
		same := true
		for i := range in1 {
			if in1[i] != in2[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("deterministic stage repeated an input")
		}
	}
	// Draining the stage eventually reaches havoc.
	for i := 0; i < int(opLast)*9*8+10; i++ {
		f.nextInput()
	}
	if f.PendingDeterministic() != 0 {
		t.Errorf("det stage not drained: %d", f.PendingDeterministic())
	}
}
