// Package fuzz implements an AFL-style coverage-guided fork-server
// fuzzer over the sqlike database engine, reproducing the paper's
// §5.3.1 experiment (Figure 9): the target is initialized once with a
// large database, then every input runs in a forked child so state
// never leaks between executions. Fork cost bounds the achievable
// executions per second.
package fuzz

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps/sqlike"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// MapSize is the coverage bitmap size, matching AFL's 64 KiB map.
const MapSize = 1 << 16

// Coverage is an AFL-style edge-coverage bitmap.
type Coverage struct {
	bits [MapSize]byte
}

// Hit records the edge from prev to cur, AFL-style (cur ^ prev>>1).
func (c *Coverage) Hit(prev, cur uint16) uint16 {
	idx := cur ^ (prev >> 1) // uint16 index spans the 64 Ki map exactly
	if c.bits[idx] < 255 {
		c.bits[idx]++
	}
	return cur
}

// Reset clears the bitmap.
func (c *Coverage) Reset() { c.bits = [MapSize]byte{} }

// CountBits returns the number of edges hit at least once.
func (c *Coverage) CountBits() int {
	n := 0
	for _, b := range c.bits {
		if b != 0 {
			n++
		}
	}
	return n
}

// MergeInto ORs this run's coverage into the global map, reporting
// whether any new edge appeared.
func (c *Coverage) MergeInto(global *Coverage) bool {
	newEdges := false
	for i, b := range c.bits {
		if b != 0 && global.bits[i] == 0 {
			global.bits[i] = 1
			newEdges = true
		}
	}
	return newEdges
}

// Target opcodes: an input is a byte program of operations against the
// database, the shape a grammar-less fuzzer would throw at a SQL
// engine's surface.
const (
	opSelect byte = iota
	opCount
	opUpdate
	opDelete
	opInsert
	opLast // number of opcodes
)

// Magic is the two-byte header a well-formed input must carry. Like
// real file-format targets, malformed inputs (most mutants) take the
// short error path immediately — which is why fuzzing executions are
// typically short-lived and fork-bound (§5.3.1).
var Magic = [2]byte{'Q', '!'}

// RunTarget interprets input against db, recording instrumented edge
// coverage. Errors from the engine are normal fuzzing outcomes and are
// folded into coverage rather than returned; only infrastructure
// failures (simulated-memory faults) surface as errors.
func RunTarget(db *sqlike.DB, input []byte, cov *Coverage) error {
	var prev uint16
	if len(input) < 2 || input[0] != Magic[0] || input[1] != Magic[1] {
		cov.Hit(prev, 0x7777) // error-path edge
		return nil
	}
	prev = cov.Hit(prev, 0x1111) // header-accepted edge
	pos := 2
	steps := 0
	for pos < len(input) && steps < 16 {
		steps++
		op := input[pos] % opLast
		pos++
		arg := func() uint64 {
			if pos+2 > len(input) {
				return 0
			}
			v := binary.LittleEndian.Uint16(input[pos:])
			pos += 2
			return uint64(v)
		}
		prev = cov.Hit(prev, uint16(op)<<8)
		// Queries run over bounded row windows (LIMIT-style), keeping
		// executions short-lived as the paper observes for fuzzing.
		const window = 1024
		slot := func(a uint64) uint64 {
			if db.NumItems() == 0 {
				return 0
			}
			return a % db.NumItems()
		}
		switch op {
		case opSelect:
			lo := arg() % 1000
			hi := lo + arg()%100
			rows, err := db.SelectItemsWindow(slot(arg()), window, sqlike.ValueBetween(lo, hi))
			if err != nil {
				return err
			}
			prev = cov.Hit(prev, edgeOutcome(op, len(rows) > 0))
		case opCount:
			n, err := db.CountItemsWindow(slot(arg()), window, sqlike.CategoryIs(uint32(arg()%17)))
			if err != nil {
				return err
			}
			prev = cov.Hit(prev, edgeOutcome(op, n > 0))
		case opUpdate:
			lo := arg() % 1000
			n, err := db.UpdateItemsWindow(slot(arg()), window, sqlike.ValueBetween(lo, lo+10), arg())
			if err != nil {
				return err
			}
			prev = cov.Hit(prev, edgeOutcome(op, n > 0))
		case opDelete:
			lo := arg() % 1000
			deleted, blocked, err := db.DeleteItemsWindow(slot(arg()), window, sqlike.ValueBetween(lo, lo+5))
			if err != nil {
				return err
			}
			prev = cov.Hit(prev, edgeOutcome(op, deleted > 0))
			prev = cov.Hit(prev, edgeOutcome(op, blocked > 0)+1)
		case opInsert:
			id := arg()
			// Engine-level errors (table full) are fuzzing outcomes.
			err := db.InsertItem(id, uint32(arg()%17), arg(), []byte("fuzzed"))
			prev = cov.Hit(prev, edgeOutcome(op, err == nil))
		}
	}
	return nil
}

func edgeOutcome(op byte, taken bool) uint16 {
	e := uint16(op)<<4 | 0x8000
	if taken {
		e |= 1
	}
	return e
}

// Config parameterizes a fuzzing session.
type Config struct {
	DB       sqlike.Config
	Items    int // initial database rows (the large initial DB)
	NameLen  int
	TagEvery int
	Mode     core.ForkMode
	Seed     int64
}

// Fuzzer is the fork server plus corpus management.
type Fuzzer struct {
	kern   *kernel.Kernel
	parent *kernel.Process
	snap   *kernel.Snapshotter
	db     *sqlike.DB
	mode   core.ForkMode
	rng    *rand.Rand

	corpus [][]byte
	global Coverage

	// Deterministic stage state: like AFL, every input newly added to
	// the corpus first goes through a sequential walking-bitflip pass
	// before the random havoc stage draws from it.
	det []detState

	// Execs counts target executions; Throughput buckets them per
	// second for the Figure 9 time series.
	Execs      int
	Throughput *stats.Throughput
}

// detState tracks the deterministic bitflip progress over one corpus
// entry.
type detState struct {
	idx int // corpus index
	bit int // next bit to flip
}

// NewFuzzer boots the fork server: one process is initialized with the
// full database (the deferred-fork-server init point) and will be the
// fork source for every execution.
func NewFuzzer(k *kernel.Kernel, cfg Config) (*Fuzzer, error) {
	parent := k.NewProcess()
	db, err := sqlike.New(parent, cfg.DB)
	if err != nil {
		parent.Exit()
		return nil, err
	}
	if err := db.Load(cfg.Items, cfg.NameLen, cfg.TagEvery); err != nil {
		parent.Exit()
		return nil, err
	}
	// Every execution forks through a Snapshotter handle: the typed
	// fork-serving API replaces the hand-rolled Fork/Exit/Wait loop and
	// aggregates the fork-pause telemetry Figure 9 narrates.
	snap, err := parent.StartSnapshotter(0, kernel.WithSnapshotMode(cfg.Mode))
	if err != nil {
		parent.Exit()
		return nil, err
	}
	f := &Fuzzer{
		kern:       k,
		parent:     parent,
		snap:       snap,
		db:         db,
		mode:       cfg.Mode,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		Throughput: stats.NewThroughput(time.Second),
	}
	// Seed corpus: one well-formed input per opcode. Seeds get the
	// deterministic stage like any other new corpus entry.
	for op := byte(0); op < opLast; op++ {
		f.corpus = append(f.corpus, []byte{Magic[0], Magic[1], op, 10, 0, 20, 0, 30, 0})
		f.det = append(f.det, detState{idx: len(f.corpus) - 1})
	}
	return f, nil
}

// PendingDeterministic reports how many corpus entries still have
// deterministic-stage work queued.
func (f *Fuzzer) PendingDeterministic() int { return len(f.det) }

// nextInput produces the next input to execute: the deterministic
// bitflip stage drains first, then havoc mutations of random corpus
// entries.
func (f *Fuzzer) nextInput() []byte {
	for len(f.det) > 0 {
		d := &f.det[0]
		base := f.corpus[d.idx]
		// Skip the magic header: flipping it only re-probes the error
		// path AFL's seeds already covered.
		if d.bit < 16 {
			d.bit = 16
		}
		if d.bit >= len(base)*8 {
			f.det = f.det[1:]
			continue
		}
		out := append([]byte(nil), base...)
		out[d.bit/8] ^= 1 << (d.bit % 8)
		d.bit++
		return out
	}
	return f.mutate(f.corpus[f.rng.Intn(len(f.corpus))])
}

// Close shuts the fork server down.
func (f *Fuzzer) Close() {
	f.snap.Stop()
	f.parent.Exit()
}

// Snapshotter exposes the per-execution fork engine's telemetry
// (pause mean/stddev/max across the whole campaign).
func (f *Fuzzer) Snapshotter() *kernel.Snapshotter { return f.snap }

// CorpusSize returns the number of interesting inputs retained.
func (f *Fuzzer) CorpusSize() int { return len(f.corpus) }

// GlobalEdges returns the number of distinct edges discovered.
func (f *Fuzzer) GlobalEdges() int { return f.global.CountBits() }

// mutate produces a variant of input with AFL-style havoc edits.
func (f *Fuzzer) mutate(input []byte) []byte {
	out := append([]byte(nil), input...)
	for n := f.rng.Intn(4) + 1; n > 0; n-- {
		switch f.rng.Intn(3) {
		case 0: // flip a byte
			if len(out) > 0 {
				out[f.rng.Intn(len(out))] ^= byte(1 << f.rng.Intn(8))
			}
		case 1: // insert a byte
			if len(out) < 64 {
				i := f.rng.Intn(len(out) + 1)
				out = append(out[:i], append([]byte{byte(f.rng.Intn(256))}, out[i:]...)...)
			}
		case 2: // delete a byte
			if len(out) > 1 {
				i := f.rng.Intn(len(out))
				out = append(out[:i], out[i+1:]...)
			}
		}
	}
	return out
}

// RunOne executes one fuzzing iteration: mutate a corpus input, fork a
// child, run the target in it, merge coverage, retain interesting
// inputs. This is the hot loop whose rate Figure 9 reports.
func (f *Fuzzer) RunOne() error {
	input := f.nextInput()

	var cov Coverage
	st, err := f.snap.SnapshotSync(func(child *kernel.Process) error {
		return RunTarget(f.db.Clone(child), input, &cov)
	})
	if err != nil {
		return fmt.Errorf("fuzz: fork: %w", err)
	}
	if st.Err != nil {
		return fmt.Errorf("fuzz: target: %w", st.Err)
	}

	f.Execs++
	f.Throughput.Record()
	if cov.MergeInto(&f.global) && len(f.corpus) < 4096 {
		f.corpus = append(f.corpus, input)
		f.det = append(f.det, detState{idx: len(f.corpus) - 1})
	}
	return nil
}

// RunFor fuzzes until the deadline and returns executions performed.
func (f *Fuzzer) RunFor(d time.Duration) (int, error) {
	deadline := time.Now().Add(d)
	start := f.Execs
	for time.Now().Before(deadline) {
		if err := f.RunOne(); err != nil {
			return f.Execs - start, err
		}
	}
	return f.Execs - start, nil
}

// RunN performs exactly n executions.
func (f *Fuzzer) RunN(n int) error {
	for i := 0; i < n; i++ {
		if err := f.RunOne(); err != nil {
			return err
		}
	}
	return nil
}
