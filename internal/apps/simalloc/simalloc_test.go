package simalloc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
)

func newArena(t *testing.T, size uint64) (*kernel.Kernel, *Arena) {
	t.Helper()
	k := kernel.New()
	p := k.NewProcess()
	a, err := NewArena(p, size)
	if err != nil {
		t.Fatal(err)
	}
	return k, a
}

func TestArenaAllocAligned(t *testing.T) {
	_, a := newArena(t, 1<<20)
	v1, err := a.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := a.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(v2)%8 != uint64(a.Base())%8 {
		t.Errorf("unaligned alloc %v", v2)
	}
	if v2 <= v1 {
		t.Error("allocations not monotone")
	}
	if a.Used() == 0 || a.Size() != 1<<20 {
		t.Error("bookkeeping wrong")
	}
}

func TestArenaExhaustion(t *testing.T) {
	_, a := newArena(t, addr.PageSize)
	if _, err := a.Alloc(addr.PageSize + 1); err == nil {
		t.Error("oversized alloc succeeded")
	}
	if _, err := a.Alloc(addr.PageSize); err != nil {
		t.Errorf("exact-fit alloc failed: %v", err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Error("alloc from full arena succeeded")
	}
}

func TestArenaReadWrite(t *testing.T) {
	_, a := newArena(t, 1<<20)
	v, err := a.AllocBytes([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Read(v, 7)
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Errorf("Read = %q, %v", got, err)
	}
	if err := a.WriteU64(v, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	x, err := a.ReadU64(v)
	if err != nil || x != 0xdeadbeefcafe {
		t.Errorf("ReadU64 = %#x, %v", x, err)
	}
}

func TestHashTableBasic(t *testing.T) {
	_, a := newArena(t, 1<<22)
	h, err := NewHashTable(a, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHashTable(a, 100); err == nil {
		t.Error("non-power-of-two capacity accepted")
	}

	if err := h.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := h.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := h.Get([]byte("absent")); ok {
		t.Error("absent key found")
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}

	// Update same size (in place) and different size (realloc).
	if err := h.Put([]byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := h.Get([]byte("k1")); string(v) != "v2" {
		t.Errorf("after update = %q", v)
	}
	if err := h.Put([]byte("k1"), []byte("longer value")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := h.Get([]byte("k1")); string(v) != "longer value" {
		t.Errorf("after resize update = %q", v)
	}
	if h.Len() != 1 {
		t.Errorf("Len after updates = %d", h.Len())
	}

	ok, err = h.Delete([]byte("k1"))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, ok, _ := h.Get([]byte("k1")); ok {
		t.Error("deleted key found")
	}
	if ok, _ := h.Delete([]byte("k1")); ok {
		t.Error("double delete reported true")
	}
}

func TestHashTableTombstoneReuse(t *testing.T) {
	_, a := newArena(t, 1<<22)
	h, err := NewHashTable(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Fill, delete, refill through tombstones repeatedly; with only 8
	// buckets this exercises probe wraparound and slot reuse.
	for round := 0; round < 5; round++ {
		for i := 0; i < 6; i++ {
			key := []byte(fmt.Sprintf("r%d-k%d", round, i))
			if err := h.Put(key, []byte{byte(i)}); err != nil {
				t.Fatalf("round %d put %d: %v", round, i, err)
			}
		}
		for i := 0; i < 6; i++ {
			key := []byte(fmt.Sprintf("r%d-k%d", round, i))
			if ok, err := h.Delete(key); err != nil || !ok {
				t.Fatalf("round %d delete %d: %v %v", round, i, ok, err)
			}
		}
	}
	if h.Len() != 0 {
		t.Errorf("Len = %d after churn", h.Len())
	}
}

func TestHashTableFull(t *testing.T) {
	_, a := newArena(t, 1<<22)
	h, _ := NewHashTable(a, 4)
	for i := 0; i < 4; i++ {
		if err := h.Put([]byte{byte(i)}, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Put([]byte{99}, []byte{1}); err == nil {
		t.Error("put into full table succeeded")
	}
}

func TestHashTableRange(t *testing.T) {
	_, a := newArena(t, 1<<22)
	h, _ := NewHashTable(a, 64)
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		if err := h.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]string{}
	if err := h.Range(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Range saw %d entries", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%q] = %q", k, got[k])
		}
	}
	// Early stop.
	n := 0
	h.Range(func(k, v []byte) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop visited %d", n)
	}
}

func TestHashTableSurvivesFork(t *testing.T) {
	// The point of the exercise: a fork snapshots the table through the
	// page tables; parent mutations afterwards are invisible to the
	// child's clone.
	k := kernel.New()
	p := k.NewProcess()
	a, err := NewArena(p, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := NewHashTable(a, 256)
	for i := 0; i < 50; i++ {
		h.Put([]byte(fmt.Sprintf("key%02d", i)), []byte(fmt.Sprintf("val%02d", i)))
	}

	child, err := p.Fork(kernel.WithMode(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	ca := a.Clone(child)
	ch := h.Clone(ca)

	// Parent overwrites and inserts after the fork.
	h.Put([]byte("key00"), []byte("MUTATED"))
	h.Put([]byte("newkey"), []byte("newval"))

	if v, ok, _ := ch.Get([]byte("key00")); !ok || string(v) != "val00" {
		t.Errorf("child sees parent mutation: %q", v)
	}
	if _, ok, _ := ch.Get([]byte("newkey")); ok {
		t.Error("child sees post-fork insert")
	}
	if v, ok, _ := h.Get([]byte("key00")); !ok || string(v) != "MUTATED" {
		t.Errorf("parent lost its write: %q", v)
	}
	child.Exit()
	p.Exit()
	if n := k.Allocator().Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestQuickHashTableVsMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, a := newArena(t, 1<<22)
		h, err := NewHashTable(a, 128)
		if err != nil {
			return false
		}
		shadow := map[string]string{}
		for op := 0; op < 200; op++ {
			key := fmt.Sprintf("k%d", rng.Intn(40))
			switch rng.Intn(3) {
			case 0, 1:
				val := fmt.Sprintf("v%d", rng.Intn(1000))
				if err := h.Put([]byte(key), []byte(val)); err != nil {
					return false
				}
				shadow[key] = val
			case 2:
				ok, err := h.Delete([]byte(key))
				if err != nil {
					return false
				}
				_, want := shadow[key]
				if ok != want {
					return false
				}
				delete(shadow, key)
			}
		}
		if h.Len() != uint64(len(shadow)) {
			return false
		}
		for k, want := range shadow {
			v, ok, err := h.Get([]byte(k))
			if err != nil || !ok || string(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
