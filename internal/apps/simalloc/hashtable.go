package simalloc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem/addr"
)

// HashTable is an open-addressing (linear probing) hash table whose
// bucket array, keys and values all live in simulated process memory.
// Bucket layout (32 bytes, little-endian):
//
//	+0  hash   uint64 (0 = empty, 1 = tombstone; real hashes avoid 0/1)
//	+8  keyPtr uint64
//	+16 keyLen uint32
//	+20 valLen uint32
//	+24 valPtr uint64
type HashTable struct {
	arena   *Arena
	buckets addr.V // base of the bucket array
	capCnt  uint64 // number of buckets (power of two)
	live    uint64 // live entries (Go-side mirror; authoritative count
	// is recomputed on Clone via scan when needed)
}

const bucketSize = 32

const (
	hashEmpty     = 0
	hashTombstone = 1
)

// NewHashTable allocates a table with the given power-of-two capacity
// inside the arena.
func NewHashTable(a *Arena, capacity uint64) (*HashTable, error) {
	if capacity == 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("simalloc: capacity %d not a power of two", capacity)
	}
	base, err := a.Alloc(capacity * bucketSize)
	if err != nil {
		return nil, err
	}
	// Arena memory is demand-zero, so all buckets start empty without
	// explicit initialization (and without materializing pages).
	return &HashTable{arena: a, buckets: base, capCnt: capacity}, nil
}

// Clone binds the table layout to another process's view of the same
// memory (used by forked children). The live-entry mirror is copied, so
// Clone must not race the parent's Put/Delete calls.
func (h *HashTable) Clone(a *Arena) *HashTable {
	return &HashTable{arena: a, buckets: h.buckets, capCnt: h.capCnt, live: h.live}
}

// View binds the table layout to another process's view of the same
// memory, copying only fields fixed at NewHashTable time (bucket base
// and capacity). Safe to call from a snapshot child's goroutine while
// the parent keeps mutating: lookups and Range read the bucket array
// through a (frozen, copy-on-write) memory view and never consult the
// live counter. Len reports 0 on a view.
func (h *HashTable) View(a *Arena) *HashTable {
	return &HashTable{arena: a, buckets: h.buckets, capCnt: h.capCnt}
}

// Len returns the number of live entries.
func (h *HashTable) Len() uint64 { return h.live }

// Buckets returns the base address of the bucket array — part of the
// Go-side layout persisted beside a durable checkpoint so the table
// can be re-adopted after a restore.
func (h *HashTable) Buckets() addr.V { return h.buckets }

// AdoptHashTable rebinds a table layout saved from another kernel's
// process: buckets is the bucket-array base, capacity the power-of-two
// bucket count, and live the entry count at save time.
func AdoptHashTable(a *Arena, buckets addr.V, capacity, live uint64) (*HashTable, error) {
	if capacity == 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("simalloc: adopt: capacity %d not a power of two", capacity)
	}
	return &HashTable{arena: a, buckets: buckets, capCnt: capacity, live: live}, nil
}

// Capacity returns the bucket count.
func (h *HashTable) Capacity() uint64 { return h.capCnt }

// fnv1a hashes key, avoiding the reserved empty/tombstone values.
func fnv1a(key []byte) uint64 {
	var x uint64 = 14695981039346656037
	for _, b := range key {
		x ^= uint64(b)
		x *= 1099511628211
	}
	if x == hashEmpty || x == hashTombstone {
		x = 2
	}
	return x
}

type bucket struct {
	hash   uint64
	keyPtr addr.V
	keyLen uint32
	valLen uint32
	valPtr addr.V
}

func (h *HashTable) bucketAddr(i uint64) addr.V {
	return h.buckets + addr.V(i*bucketSize)
}

func (h *HashTable) readBucket(i uint64) (bucket, error) {
	var raw [bucketSize]byte
	if err := h.arena.ReadInto(h.bucketAddr(i), raw[:]); err != nil {
		return bucket{}, err
	}
	return bucket{
		hash:   binary.LittleEndian.Uint64(raw[0:]),
		keyPtr: addr.V(binary.LittleEndian.Uint64(raw[8:])),
		keyLen: binary.LittleEndian.Uint32(raw[16:]),
		valLen: binary.LittleEndian.Uint32(raw[20:]),
		valPtr: addr.V(binary.LittleEndian.Uint64(raw[24:])),
	}, nil
}

func (h *HashTable) writeBucket(i uint64, b bucket) error {
	var raw [bucketSize]byte
	binary.LittleEndian.PutUint64(raw[0:], b.hash)
	binary.LittleEndian.PutUint64(raw[8:], uint64(b.keyPtr))
	binary.LittleEndian.PutUint32(raw[16:], b.keyLen)
	binary.LittleEndian.PutUint32(raw[20:], b.valLen)
	binary.LittleEndian.PutUint64(raw[24:], uint64(b.valPtr))
	return h.arena.Write(h.bucketAddr(i), raw[:])
}

// keyEquals checks the stored key at b against key.
func (h *HashTable) keyEquals(b bucket, key []byte) (bool, error) {
	if int(b.keyLen) != len(key) {
		return false, nil
	}
	stored, err := h.arena.Read(b.keyPtr, len(key))
	if err != nil {
		return false, err
	}
	for i := range key {
		if stored[i] != key[i] {
			return false, nil
		}
	}
	return true, nil
}

// find locates the bucket index for key: (index, found, error). When
// not found, index is the first insertable slot.
func (h *HashTable) find(key []byte) (uint64, bool, error) {
	hash := fnv1a(key)
	mask := h.capCnt - 1
	insert := uint64(1<<63 - 1)
	haveInsert := false
	for probe := uint64(0); probe < h.capCnt; probe++ {
		i := (hash + probe) & mask
		b, err := h.readBucket(i)
		if err != nil {
			return 0, false, err
		}
		switch b.hash {
		case hashEmpty:
			if !haveInsert {
				insert = i
			}
			return insert, false, nil
		case hashTombstone:
			if !haveInsert {
				insert, haveInsert = i, true
			}
		default:
			if b.hash == hash {
				eq, err := h.keyEquals(b, key)
				if err != nil {
					return 0, false, err
				}
				if eq {
					return i, true, nil
				}
			}
		}
	}
	if haveInsert {
		return insert, false, nil
	}
	return 0, false, fmt.Errorf("simalloc: hash table full (%d buckets)", h.capCnt)
}

// Put inserts or updates key -> val. Values are stored immutably in the
// arena; updates allocate fresh value bytes (like Redis's SDS strings).
func (h *HashTable) Put(key, val []byte) error {
	i, found, err := h.find(key)
	if err != nil {
		return err
	}
	if found {
		b, err := h.readBucket(i)
		if err != nil {
			return err
		}
		// In-place overwrite when the size matches; else allocate.
		if int(b.valLen) == len(val) {
			if len(val) > 0 {
				if err := h.arena.Write(b.valPtr, val); err != nil {
					return err
				}
			}
			return nil
		}
		vp, err := h.arena.AllocBytes(val)
		if err != nil {
			return err
		}
		b.valPtr, b.valLen = vp, uint32(len(val))
		return h.writeBucket(i, b)
	}
	kp, err := h.arena.AllocBytes(key)
	if err != nil {
		return err
	}
	vp, err := h.arena.AllocBytes(val)
	if err != nil {
		return err
	}
	if err := h.writeBucket(i, bucket{
		hash:   fnv1a(key),
		keyPtr: kp,
		keyLen: uint32(len(key)),
		valLen: uint32(len(val)),
		valPtr: vp,
	}); err != nil {
		return err
	}
	h.live++
	return nil
}

// Get returns the value for key, or ok=false.
func (h *HashTable) Get(key []byte) ([]byte, bool, error) {
	i, found, err := h.find(key)
	if err != nil || !found {
		return nil, false, err
	}
	b, err := h.readBucket(i)
	if err != nil {
		return nil, false, err
	}
	val, err := h.arena.Read(b.valPtr, int(b.valLen))
	if err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Delete removes key, returning whether it existed.
func (h *HashTable) Delete(key []byte) (bool, error) {
	i, found, err := h.find(key)
	if err != nil || !found {
		return false, err
	}
	if err := h.writeBucket(i, bucket{hash: hashTombstone}); err != nil {
		return false, err
	}
	h.live--
	return true, nil
}

// Range calls fn for every live entry in bucket order; fn returning
// false stops the iteration. It is the snapshot walk of the Redis-like
// store.
func (h *HashTable) Range(fn func(key, val []byte) bool) error {
	for i := uint64(0); i < h.capCnt; i++ {
		b, err := h.readBucket(i)
		if err != nil {
			return err
		}
		if b.hash == hashEmpty || b.hash == hashTombstone {
			continue
		}
		key, err := h.arena.Read(b.keyPtr, int(b.keyLen))
		if err != nil {
			return err
		}
		val, err := h.arena.Read(b.valPtr, int(b.valLen))
		if err != nil {
			return err
		}
		if !fn(key, val) {
			return nil
		}
	}
	return nil
}
