// Package simalloc provides user-level data structures that live
// entirely inside simulated process memory: a bump allocator (arena)
// and an open-addressing hash table. The realistic workloads (the
// Redis-like store, the SQLite-like engine, the fuzzing targets) build
// on these so that forking a process genuinely snapshots their data
// through the simulated page tables, with copy-on-write behaviour
// driving the experiments.
//
// Go-side handles (cursor positions, layout descriptors) play the role
// of a process's registers and stack: they are cloned explicitly when
// an application forks, while the bulk data is shared copy-on-write
// through the kernel.
package simalloc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

// Arena is a bump allocator over one simulated mapping.
type Arena struct {
	proc *kernel.Process
	base addr.V
	size uint64
	off  uint64
}

// NewArena maps size bytes in proc and returns an arena over them.
// The mapping is populated so that, as in the paper's setups, the data
// region is fully backed before any fork.
func NewArena(proc *kernel.Process, size uint64) (*Arena, error) {
	base, err := proc.Mmap(size, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		return nil, fmt.Errorf("simalloc: %w", err)
	}
	return &Arena{proc: proc, base: base, size: size}, nil
}

// Clone returns a handle on the same arena layout bound to another
// process — the Go-side state duplication that fork performs implicitly
// for a real process. The bump cursor is copied, so Clone must run on
// a goroutine that is not racing the parent's allocations.
func (a *Arena) Clone(proc *kernel.Process) *Arena {
	return &Arena{proc: proc, base: a.base, size: a.size, off: a.off}
}

// Adopt rebinds an arena layout saved from another kernel's process —
// the inverse of the implicit register copy a fork performs. The
// caller asserts that proc's memory at [base, base+size) holds an
// arena image with used bytes allocated, e.g. because proc was
// restored from a durable checkpoint of the original.
func Adopt(proc *kernel.Process, base addr.V, size, used uint64) (*Arena, error) {
	if used > size {
		return nil, fmt.Errorf("simalloc: adopt: used %d > size %d", used, size)
	}
	return &Arena{proc: proc, base: base, size: size, off: used}, nil
}

// View returns a read-only handle on the arena bound to another
// process. Unlike Clone it copies only fields that never change after
// NewArena (base, size), so it is safe to call from a snapshot child's
// goroutine while the parent keeps allocating: the authoritative data
// lives in simulated memory, frozen at the fork instant, and reads
// through the view need no cursor. Allocating through a view fails as
// if the arena were already full.
func (a *Arena) View(proc *kernel.Process) *Arena {
	return &Arena{proc: proc, base: a.base, size: a.size, off: a.size}
}

// Process returns the owning process.
func (a *Arena) Process() *kernel.Process { return a.proc }

// Base returns the arena's base address.
func (a *Arena) Base() addr.V { return a.base }

// Size returns the arena's capacity in bytes.
func (a *Arena) Size() uint64 { return a.size }

// Used returns the number of allocated bytes.
func (a *Arena) Used() uint64 { return a.off }

// Alloc reserves n bytes (8-byte aligned) and returns their address.
func (a *Arena) Alloc(n uint64) (addr.V, error) {
	aligned := (a.off + 7) &^ 7
	if aligned+n > a.size {
		return 0, fmt.Errorf("simalloc: arena exhausted (%d of %d used, need %d)",
			a.off, a.size, n)
	}
	v := a.base + addr.V(aligned)
	a.off = aligned + n
	return v, nil
}

// Write stores p at address v (which must be arena memory).
func (a *Arena) Write(v addr.V, p []byte) error { return a.proc.WriteAt(p, v) }

// Read loads n bytes from address v.
func (a *Arena) Read(v addr.V, n int) ([]byte, error) {
	p := make([]byte, n)
	if err := a.proc.ReadAt(p, v); err != nil {
		return nil, err
	}
	return p, nil
}

// ReadInto loads len(p) bytes from address v into p.
func (a *Arena) ReadInto(v addr.V, p []byte) error { return a.proc.ReadAt(p, v) }

// WriteU64 stores a little-endian uint64 at v.
func (a *Arena) WriteU64(v addr.V, x uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	return a.proc.WriteAt(b[:], v)
}

// ReadU64 loads a little-endian uint64 from v.
func (a *Arena) ReadU64(v addr.V) (uint64, error) {
	var b [8]byte
	if err := a.proc.ReadAt(b[:], v); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// AllocBytes copies p into freshly allocated arena memory and returns
// its address.
func (a *Arena) AllocBytes(p []byte) (addr.V, error) {
	v, err := a.Alloc(uint64(len(p)))
	if err != nil {
		return 0, err
	}
	if len(p) > 0 {
		if err := a.Write(v, p); err != nil {
			return 0, err
		}
	}
	return v, nil
}
