package sqlike

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
)

func testDB(t *testing.T) (*kernel.Kernel, *kernel.Process, *DB) {
	t.Helper()
	k := kernel.New()
	p := k.NewProcess()
	db, err := New(p, Config{ArenaBytes: 1 << 24, MaxItems: 10000, MaxTags: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return k, p, db
}

func TestInsertSelect(t *testing.T) {
	_, _, db := testDB(t)
	if err := db.InsertItem(1, 5, 42, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertItem(2, 5, 99, []byte("beta")); err != nil {
		t.Fatal(err)
	}
	rows, err := db.SelectItems(ValueBetween(40, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].ID != 1 || !bytes.Equal(rows[0].Name, []byte("alpha")) {
		t.Fatalf("SelectItems = %+v", rows)
	}
	rows, err = db.SelectItems(CategoryIs(5))
	if err != nil || len(rows) != 2 {
		t.Fatalf("category select = %d rows, %v", len(rows), err)
	}
	n, err := db.CountItems(CategoryIs(5))
	if err != nil || n != 2 {
		t.Fatalf("CountItems = %d, %v", n, err)
	}
}

func TestUpdate(t *testing.T) {
	_, _, db := testDB(t)
	for i := 0; i < 10; i++ {
		db.InsertItem(uint64(i), 0, uint64(i*10), []byte("row"))
	}
	n, err := db.UpdateItems(ValueBetween(30, 60), 7)
	if err != nil || n != 3 {
		t.Fatalf("UpdateItems = %d, %v", n, err)
	}
	rows, _ := db.SelectItems(func(r Row) bool { return r.Value == 7 })
	if len(rows) != 3 {
		t.Errorf("updated rows = %d", len(rows))
	}
}

func TestDeleteWithForeignKeys(t *testing.T) {
	_, _, db := testDB(t)
	db.InsertItem(1, 0, 10, []byte("free"))
	db.InsertItem(2, 0, 20, []byte("referenced"))
	db.InsertTag(1, 2, []byte("keep"))

	deleted, blocked, err := db.DeleteItems(ValueBetween(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 || blocked != 1 {
		t.Fatalf("deleted=%d blocked=%d", deleted, blocked)
	}
	rows, _ := db.SelectItems(func(Row) bool { return true })
	if len(rows) != 1 || rows[0].ID != 2 {
		t.Errorf("surviving rows = %+v", rows)
	}
}

func TestLoad(t *testing.T) {
	_, _, db := testDB(t)
	if err := db.Load(1000, 16, 100); err != nil {
		t.Fatal(err)
	}
	if db.NumItems() != 1000 {
		t.Errorf("NumItems = %d", db.NumItems())
	}
	if db.NumTags() != 10 {
		t.Errorf("NumTags = %d", db.NumTags())
	}
	n, err := db.CountItems(ValueBetween(0, 1000))
	if err != nil || n != 1000 {
		t.Errorf("CountItems = %d, %v", n, err)
	}
}

func TestForkIsolatedUnitTests(t *testing.T) {
	// The §5.3.2 property: each test runs in a child from the same
	// post-init state; a destructive test (DELETE) must not affect the
	// parent or later tests.
	k, p, db := testDB(t)
	if err := db.Load(2000, 8, 0); err != nil {
		t.Fatal(err)
	}
	before, _ := db.CountItems(func(Row) bool { return true })

	for _, ut := range StandardTests() {
		child, err := p.Fork(kernel.WithMode(core.ForkOnDemand))
		if err != nil {
			t.Fatal(err)
		}
		if err := ut.Run(db.Clone(child)); err != nil {
			t.Fatalf("%s: %v", ut.Name, err)
		}
		child.Exit()
		child.Wait()
	}
	after, _ := db.CountItems(func(Row) bool { return true })
	if after != before {
		t.Errorf("parent rows changed: %d -> %d", before, after)
	}
	rows, _ := db.SelectItems(func(r Row) bool { return r.Value == 999999 })
	if len(rows) != 0 {
		t.Error("child UPDATE leaked into parent")
	}
	p.Exit()
	if n := k.Allocator().Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestMeasureSequential(t *testing.T) {
	k := kernel.New()
	cfg := SuiteConfig{
		DB:      Config{ArenaBytes: 1 << 24, MaxItems: 10000, MaxTags: 1000},
		Items:   3000,
		NameLen: 16,
		Mode:    core.ForkClassic,
	}
	res, err := MeasureSequential(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitMS <= 0 || res.ForkMS <= 0 || res.TestMS <= 0 {
		t.Errorf("non-positive phases: %+v", res)
	}
	// Table 2 shape: initialization dominates.
	if res.InitMS < res.TestMS {
		t.Errorf("init (%.3f) not dominating test (%.3f)", res.InitMS, res.TestMS)
	}
	if res.Total() <= res.InitMS {
		t.Error("total not additive")
	}
}

func TestMeasureForkedODFBeatsClassic(t *testing.T) {
	// Table 3 shape: ODF fork time must be far below classic's on a
	// sizable database, letting the test itself dominate.
	k := kernel.New()
	base := SuiteConfig{
		DB:      Config{ArenaBytes: 1 << 26, MaxItems: 200000, MaxTags: 1000},
		Items:   50000,
		NameLen: 32,
		Reps:    2,
	}
	classicCfg := base
	classicCfg.Mode = core.ForkClassic
	classic, err := MeasureForked(k, classicCfg)
	if err != nil {
		t.Fatal(err)
	}
	odfCfg := base
	odfCfg.Mode = core.ForkOnDemand
	odf, err := MeasureForked(k, odfCfg)
	if err != nil {
		t.Fatal(err)
	}
	if odf.ForkMS >= classic.ForkMS {
		t.Errorf("ODF fork (%.4f) not faster than classic (%.4f)", odf.ForkMS, classic.ForkMS)
	}
	if classic.Total() <= 0 || odf.Total() <= 0 {
		t.Error("degenerate totals")
	}
}

func TestTableCapacityErrors(t *testing.T) {
	k := kernel.New()
	p := k.NewProcess()
	defer p.Exit()
	db, err := New(p, Config{ArenaBytes: 1 << 20, MaxItems: 2, MaxTags: 1})
	if err != nil {
		t.Fatal(err)
	}
	db.InsertItem(1, 0, 0, nil)
	db.InsertItem(2, 0, 0, nil)
	if err := db.InsertItem(3, 0, 0, nil); err == nil {
		t.Error("insert into full items table succeeded")
	}
	db.InsertTag(1, 1, nil)
	if err := db.InsertTag(2, 1, nil); err == nil {
		t.Error("insert into full tags table succeeded")
	}
	_ = k
}
