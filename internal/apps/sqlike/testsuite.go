package sqlike

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// The fork-based unit-test harness of §5.3.2: initialize the database
// once, then run each unit test in a forked child so every test starts
// from a clean, identical post-initialization state. Table 2 shows that
// initialization dominates when tests do not share it; Table 3 compares
// the fork engines once they do.

// UnitTest is one test case run against a database snapshot.
type UnitTest struct {
	Name string
	Run  func(db *DB) error
}

// testWindow bounds the rows one unit test touches. Like the paper's
// fine-grained tests — which "only test a tiny part of the
// functionality" so testing takes ~0.01% of the total — each test
// operates on a bounded slice of the large database.
const testWindow = 2048

// StandardTests returns the three unit tests the paper uses: a filtered
// SELECT, a conditional DELETE (with FK checking), and a conditional
// UPDATE, each over a bounded window of the loaded database.
func StandardTests() []UnitTest {
	return []UnitTest{
		{
			Name: "select-filter",
			Run: func(db *DB) error {
				rows, err := db.SelectItemsWindow(0, testWindow, ValueBetween(100, 200))
				if err != nil {
					return err
				}
				if len(rows) == 0 {
					return fmt.Errorf("select returned no rows")
				}
				return nil
			},
		},
		{
			Name: "delete-condition",
			Run: func(db *DB) error {
				deleted, _, err := db.DeleteItemsWindow(0, testWindow, ValueBetween(300, 350))
				if err != nil {
					return err
				}
				if deleted == 0 {
					return fmt.Errorf("delete removed no rows")
				}
				return nil
			},
		},
		{
			Name: "update-condition",
			Run: func(db *DB) error {
				n, err := db.UpdateItemsWindow(0, testWindow, ValueBetween(500, 600), 999999)
				if err != nil {
					return err
				}
				if n == 0 {
					return fmt.Errorf("update changed no rows")
				}
				return nil
			},
		},
	}
}

// SuiteConfig parameterizes the harness.
type SuiteConfig struct {
	DB       Config
	Items    int // initial database rows
	NameLen  int
	TagEvery int
	Mode     core.ForkMode
	Reps     int // repetitions per unit test
}

// PhaseBreakdown is a Table 2 row set: the average time spent per phase
// when each test pays for its own initialization.
type PhaseBreakdown struct {
	InitMS, ForkMS, TestMS float64
}

// Total returns the summed phase time.
func (p PhaseBreakdown) Total() float64 { return p.InitMS + p.ForkMS + p.TestMS }

// MeasureSequential reproduces Table 2: for each unit test, initialize
// the database from scratch, fork once (to price the fork in this
// flow), and run the test.
func MeasureSequential(k *kernel.Kernel, cfg SuiteConfig) (PhaseBreakdown, error) {
	var init, fork, test stats.Sample
	for _, ut := range StandardTests() {
		proc := k.NewProcess()

		t0 := time.Now()
		db, err := New(proc, cfg.DB)
		if err != nil {
			proc.Exit()
			return PhaseBreakdown{}, err
		}
		if err := db.Load(cfg.Items, cfg.NameLen, cfg.TagEvery); err != nil {
			proc.Exit()
			return PhaseBreakdown{}, err
		}
		init.AddDuration(time.Since(t0))

		t1 := time.Now()
		child, err := proc.Fork(kernel.WithMode(cfg.Mode))
		if err != nil {
			proc.Exit()
			return PhaseBreakdown{}, err
		}
		fork.AddDuration(time.Since(t1))

		cdb := db.Clone(child)
		t2 := time.Now()
		if err := ut.Run(cdb); err != nil {
			child.Exit()
			proc.Exit()
			return PhaseBreakdown{}, fmt.Errorf("%s: %w", ut.Name, err)
		}
		test.AddDuration(time.Since(t2))
		child.Exit()
		proc.Exit()
	}
	return PhaseBreakdown{
		InitMS: init.Mean(), ForkMS: fork.Mean(), TestMS: test.Mean(),
	}, nil
}

// ForkedSuiteResult is a Table 3 row set.
type ForkedSuiteResult struct {
	Mode           core.ForkMode
	ForkMS, TestMS float64
}

// Total returns fork + test time.
func (r ForkedSuiteResult) Total() float64 { return r.ForkMS + r.TestMS }

// MeasureForked reproduces Table 3: one shared initialization, then
// each unit test runs in a freshly forked child, repeated cfg.Reps
// times per test.
func MeasureForked(k *kernel.Kernel, cfg SuiteConfig) (ForkedSuiteResult, error) {
	proc := k.NewProcess()
	defer proc.Exit()
	db, err := New(proc, cfg.DB)
	if err != nil {
		return ForkedSuiteResult{}, err
	}
	if err := db.Load(cfg.Items, cfg.NameLen, cfg.TagEvery); err != nil {
		return ForkedSuiteResult{}, err
	}

	var fork, test stats.Sample
	reps := cfg.Reps
	if reps <= 0 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		for _, ut := range StandardTests() {
			t0 := time.Now()
			child, err := proc.Fork(kernel.WithMode(cfg.Mode))
			if err != nil {
				return ForkedSuiteResult{}, err
			}
			fork.AddDuration(time.Since(t0))

			cdb := db.Clone(child)
			t1 := time.Now()
			err = ut.Run(cdb)
			test.AddDuration(time.Since(t1))
			child.Exit()
			child.Wait()
			if err != nil {
				return ForkedSuiteResult{}, fmt.Errorf("%s: %w", ut.Name, err)
			}
		}
	}
	return ForkedSuiteResult{Mode: cfg.Mode, ForkMS: fork.Mean(), TestMS: test.Mean()}, nil
}
