// Package sqlike implements a miniature relational engine whose row
// storage lives in simulated process memory, standing in for SQLite in
// the paper's unit-testing (§5.3.2, Tables 2–3) and fuzzing (§5.3.1,
// Figure 9) experiments.
//
// The database holds two tables with a foreign-key relationship —
// items(id, category, value, name) and tags(id, item_id, label) — and
// supports filtered SELECT, conditional UPDATE and DELETE with
// referential checking, the three operations the paper's unit tests
// exercise. Loading a large initial database is the expensive
// initialization that fork-based test isolation amortizes.
package sqlike

import (
	"encoding/binary"
	"fmt"

	"repro/internal/apps/simalloc"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
)

// Row is a decoded items row.
type Row struct {
	ID       uint64
	Category uint32
	Value    uint64
	Name     []byte
}

// Tag is a decoded tags row referencing an item.
type Tag struct {
	ID     uint64
	ItemID uint64
	Label  []byte
}

// itemHdrSize is the fixed prefix of an items record:
// id u64 | category u32 | flags u32 | value u64 | nameLen u32 | pad u32.
const itemHdrSize = 32

// tagHdrSize is the fixed prefix of a tags record:
// id u64 | itemID u64 | flags u32 | labelLen u32.
const tagHdrSize = 24

const flagDeleted = 1

// table is the on-(simulated-)memory representation shared by both
// relations: a directory of record pointers plus a row count.
type table struct {
	dir   addr.V // directory: capacity u64 slots of record pointers
	cap   uint64
	count uint64
}

// DB is a handle on the database bound to one process.
type DB struct {
	arena *simalloc.Arena
	items table
	tags  table
}

// Config sizes a database.
type Config struct {
	ArenaBytes uint64
	MaxItems   uint64
	MaxTags    uint64
}

// New creates an empty database inside a fresh arena of proc.
func New(proc *kernel.Process, cfg Config) (*DB, error) {
	arena, err := simalloc.NewArena(proc, cfg.ArenaBytes)
	if err != nil {
		return nil, err
	}
	db := &DB{arena: arena}
	if db.items.dir, err = arena.Alloc(cfg.MaxItems * 8); err != nil {
		return nil, err
	}
	db.items.cap = cfg.MaxItems
	if db.tags.dir, err = arena.Alloc(cfg.MaxTags * 8); err != nil {
		return nil, err
	}
	db.tags.cap = cfg.MaxTags
	return db, nil
}

// Clone rebinds the database handle to a forked child process. The
// handle copy is the Go-side analogue of the child inheriting the
// parent's registers; the row storage is shared copy-on-write.
func (db *DB) Clone(proc *kernel.Process) *DB {
	out := *db
	out.arena = db.arena.Clone(proc)
	return &out
}

// Arena exposes the underlying storage arena.
func (db *DB) Arena() *simalloc.Arena { return db.arena }

// NumItems returns the number of item rows (including deleted slots'
// exclusion).
func (db *DB) NumItems() uint64 { return db.items.count }

// NumTags returns the number of tag rows.
func (db *DB) NumTags() uint64 { return db.tags.count }

func (db *DB) slotAddr(t *table, i uint64) addr.V { return t.dir + addr.V(i*8) }

func (db *DB) recordPtr(t *table, i uint64) (addr.V, error) {
	x, err := db.arena.ReadU64(db.slotAddr(t, i))
	return addr.V(x), err
}

// InsertItem appends an items row.
func (db *DB) InsertItem(id uint64, category uint32, value uint64, name []byte) error {
	if db.items.count >= db.items.cap {
		return fmt.Errorf("sqlike: items table full (%d)", db.items.cap)
	}
	rec := make([]byte, itemHdrSize+len(name))
	binary.LittleEndian.PutUint64(rec[0:], id)
	binary.LittleEndian.PutUint32(rec[8:], category)
	binary.LittleEndian.PutUint32(rec[12:], 0)
	binary.LittleEndian.PutUint64(rec[16:], value)
	binary.LittleEndian.PutUint32(rec[24:], uint32(len(name)))
	copy(rec[itemHdrSize:], name)
	ptr, err := db.arena.AllocBytes(rec)
	if err != nil {
		return err
	}
	if err := db.arena.WriteU64(db.slotAddr(&db.items, db.items.count), uint64(ptr)); err != nil {
		return err
	}
	db.items.count++
	return nil
}

// InsertTag appends a tags row referencing itemID.
func (db *DB) InsertTag(id, itemID uint64, label []byte) error {
	if db.tags.count >= db.tags.cap {
		return fmt.Errorf("sqlike: tags table full (%d)", db.tags.cap)
	}
	rec := make([]byte, tagHdrSize+len(label))
	binary.LittleEndian.PutUint64(rec[0:], id)
	binary.LittleEndian.PutUint64(rec[8:], itemID)
	binary.LittleEndian.PutUint32(rec[16:], 0)
	binary.LittleEndian.PutUint32(rec[20:], uint32(len(label)))
	copy(rec[tagHdrSize:], label)
	ptr, err := db.arena.AllocBytes(rec)
	if err != nil {
		return err
	}
	if err := db.arena.WriteU64(db.slotAddr(&db.tags, db.tags.count), uint64(ptr)); err != nil {
		return err
	}
	db.tags.count++
	return nil
}

// readItem decodes the items record at slot i; deleted rows return
// ok=false.
func (db *DB) readItem(i uint64, withName bool) (Row, bool, error) {
	ptr, err := db.recordPtr(&db.items, i)
	if err != nil {
		return Row{}, false, err
	}
	var hdr [itemHdrSize]byte
	if err := db.arena.ReadInto(ptr, hdr[:]); err != nil {
		return Row{}, false, err
	}
	if binary.LittleEndian.Uint32(hdr[12:])&flagDeleted != 0 {
		return Row{}, false, nil
	}
	row := Row{
		ID:       binary.LittleEndian.Uint64(hdr[0:]),
		Category: binary.LittleEndian.Uint32(hdr[8:]),
		Value:    binary.LittleEndian.Uint64(hdr[16:]),
	}
	if withName {
		n := int(binary.LittleEndian.Uint32(hdr[24:]))
		if row.Name, err = db.arena.Read(ptr+itemHdrSize, n); err != nil {
			return Row{}, false, err
		}
	}
	return row, true, nil
}

// Pred filters item rows.
type Pred func(Row) bool

// ValueBetween selects rows with lo <= Value < hi.
func ValueBetween(lo, hi uint64) Pred {
	return func(r Row) bool { return r.Value >= lo && r.Value < hi }
}

// CategoryIs selects rows in a category.
func CategoryIs(c uint32) Pred {
	return func(r Row) bool { return r.Category == c }
}

// SelectItems scans items and returns the rows matching p (names
// included) — unit test 1 of §5.3.2.
func (db *DB) SelectItems(p Pred) ([]Row, error) {
	return db.SelectItemsWindow(0, db.items.count, p)
}

// SelectItemsWindow scans at most n row slots starting at slot lo —
// the bounded (LIMIT-style) variant that short-lived unit tests and
// fuzzing executions use.
func (db *DB) SelectItemsWindow(lo, n uint64, p Pred) ([]Row, error) {
	var out []Row
	end := lo + n
	if end > db.items.count {
		end = db.items.count
	}
	for i := lo; i < end; i++ {
		row, ok, err := db.readItem(i, true)
		if err != nil {
			return nil, err
		}
		if ok && p(row) {
			out = append(out, row)
		}
	}
	return out, nil
}

// CountItems scans items counting matches without materializing rows.
func (db *DB) CountItems(p Pred) (int, error) {
	return db.CountItemsWindow(0, db.items.count, p)
}

// CountItemsWindow counts matches over at most cnt slots from slot lo.
func (db *DB) CountItemsWindow(lo, cnt uint64, p Pred) (int, error) {
	n := 0
	end := lo + cnt
	if end > db.items.count {
		end = db.items.count
	}
	for i := lo; i < end; i++ {
		row, ok, err := db.readItem(i, false)
		if err != nil {
			return 0, err
		}
		if ok && p(row) {
			n++
		}
	}
	return n, nil
}

// UpdateItems sets Value to newValue on all rows matching p, returning
// the number updated — unit test 3 of §5.3.2.
func (db *DB) UpdateItems(p Pred, newValue uint64) (int, error) {
	return db.UpdateItemsWindow(0, db.items.count, p, newValue)
}

// UpdateItemsWindow updates at most cnt slots starting at slot lo.
func (db *DB) UpdateItemsWindow(lo, cnt uint64, p Pred, newValue uint64) (int, error) {
	n := 0
	end := lo + cnt
	if end > db.items.count {
		end = db.items.count
	}
	for i := lo; i < end; i++ {
		row, ok, err := db.readItem(i, false)
		if err != nil {
			return n, err
		}
		if !ok || !p(row) {
			continue
		}
		ptr, err := db.recordPtr(&db.items, i)
		if err != nil {
			return n, err
		}
		if err := db.arena.WriteU64(ptr+16, newValue); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// DeleteItems marks rows matching p deleted, enforcing the foreign-key
// constraint: an item referenced by a live tag cannot be deleted and is
// skipped (returned in blocked) — unit test 2 of §5.3.2.
func (db *DB) DeleteItems(p Pred) (deleted, blocked int, err error) {
	return db.DeleteItemsWindow(0, db.items.count, p)
}

// DeleteItemsWindow deletes over at most cnt slots starting at slot lo.
func (db *DB) DeleteItemsWindow(lo, cnt uint64, p Pred) (deleted, blocked int, err error) {
	end := lo + cnt
	if end > db.items.count {
		end = db.items.count
	}
	for i := lo; i < end; i++ {
		row, ok, err := db.readItem(i, false)
		if err != nil {
			return deleted, blocked, err
		}
		if !ok || !p(row) {
			continue
		}
		referenced, err := db.itemReferenced(row.ID)
		if err != nil {
			return deleted, blocked, err
		}
		if referenced {
			blocked++
			continue
		}
		ptr, err := db.recordPtr(&db.items, i)
		if err != nil {
			return deleted, blocked, err
		}
		var flags [4]byte
		binary.LittleEndian.PutUint32(flags[:], flagDeleted)
		if err := db.arena.Write(ptr+12, flags[:]); err != nil {
			return deleted, blocked, err
		}
		deleted++
	}
	return deleted, blocked, nil
}

// itemReferenced reports whether any live tag references itemID. The
// tags table is kept sorted by item_id (Load inserts in order, playing
// the role of the foreign-key index a real engine maintains), so the
// check is a binary search rather than a full scan.
func (db *DB) itemReferenced(itemID uint64) (bool, error) {
	lo, hi := uint64(0), db.tags.count
	for lo < hi {
		mid := (lo + hi) / 2
		tid, deleted, err := db.tagItemID(mid)
		if err != nil {
			return false, err
		}
		switch {
		case tid == itemID:
			return !deleted, nil
		case tid < itemID:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false, nil
}

// tagItemID reads the item_id and deleted flag of the tag at slot i.
func (db *DB) tagItemID(i uint64) (uint64, bool, error) {
	ptr, err := db.recordPtr(&db.tags, i)
	if err != nil {
		return 0, false, err
	}
	var hdr [tagHdrSize]byte
	if err := db.arena.ReadInto(ptr, hdr[:]); err != nil {
		return 0, false, err
	}
	return binary.LittleEndian.Uint64(hdr[8:]),
		binary.LittleEndian.Uint32(hdr[16:])&flagDeleted != 0, nil
}

// Load populates the database with nItems rows (deterministic contents)
// and one tag per tagEvery-th item — the expensive initialization phase
// of Table 2.
func (db *DB) Load(nItems int, nameLen int, tagEvery int) error {
	name := make([]byte, nameLen)
	for i := 0; i < nItems; i++ {
		for j := range name {
			name[j] = byte('a' + (i+j)%26)
		}
		if err := db.InsertItem(uint64(i), uint32(i%17), uint64(i*7%1000), name); err != nil {
			return err
		}
		if tagEvery > 0 && i%tagEvery == 0 {
			if err := db.InsertTag(uint64(i/tagEvery), uint64(i), []byte("tag")); err != nil {
				return err
			}
		}
	}
	return nil
}
