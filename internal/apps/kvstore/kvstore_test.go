package kvstore

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
)

func testConfig(mode core.ForkMode) Config {
	return Config{
		ArenaBytes: 1 << 24, // 16 MiB
		TableCap:   1 << 12,
		Mode:       mode,
		Threshold:  0,
	}
}

func TestSetGet(t *testing.T) {
	k := kernel.New()
	s, err := New(k, testConfig(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Set([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPopulate(t *testing.T) {
	k := kernel.New()
	s, err := New(k, testConfig(core.ForkClassic))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Populate(100, 64); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 {
		t.Errorf("Len = %d", s.Len())
	}
	v, ok, err := s.Get(Key(42))
	if err != nil || !ok || len(v) != 64 {
		t.Errorf("Get(key42) = %d bytes, %v, %v", len(v), ok, err)
	}
}

func TestSnapshotConsistency(t *testing.T) {
	// The snapshot must capture the state at fork time even while the
	// parent keeps mutating — the fundamental Redis property.
	k := kernel.New()
	s, err := New(k, testConfig(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Populate(50, 16); err != nil {
		t.Fatal(err)
	}
	out := k.FS().Create("dump.rdb")
	if err := s.SnapshotNow(out); err != nil {
		t.Fatal(err)
	}
	// Mutate immediately after the fork returns; the child serializer
	// may still be running.
	for i := 0; i < 50; i++ {
		if _, err := s.Set(Key(i), bytes.Repeat([]byte{0xFF}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	s.WaitSnapshots()

	// The dump must contain only pre-mutation values (byte 0xFF absent).
	data := make([]byte, out.Size())
	if _, err := out.ReadAt(data, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty snapshot")
	}
	if bytes.Contains(data, bytes.Repeat([]byte{0xFF}, 16)) {
		t.Error("snapshot contains post-fork mutations")
	}
	if s.ForkTimes.N() != 1 || s.Snapshots() != 1 {
		t.Errorf("fork bookkeeping: n=%d snaps=%d", s.ForkTimes.N(), s.Snapshots())
	}
	if n := k.Allocator().Allocated(); n == 0 {
		t.Error("store arena unexpectedly freed")
	}
}

func TestThresholdTriggersSnapshot(t *testing.T) {
	k := kernel.New()
	cfg := testConfig(core.ForkOnDemand)
	cfg.Threshold = 10
	s, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snaps := 0
	for i := 0; i < 25; i++ {
		trig, err := s.Set(Key(i), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if trig {
			snaps++
		}
	}
	if snaps != 2 {
		t.Errorf("snapshots = %d, want 2 (25 sets, threshold 10)", snaps)
	}
	s.WaitSnapshots()
}

func TestRunLatencySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("latency benchmark in -short mode")
	}
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		cfg := LatencyConfig{
			Store: Config{
				ArenaBytes: 1 << 25,
				TableCap:   1 << 13,
				Mode:       mode,
				Threshold:  500,
			},
			Keys:      2000,
			ValueSize: 32,
			Requests:  4000,
			LoadRatio: 0.5,
			Seed:      1,
		}
		res, err := RunLatency(cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Snapshots == 0 {
			t.Errorf("%v: no snapshots ran", mode)
		}
		if res.Percentiles[50] <= 0 || res.Percentiles[99.99] < res.Percentiles[50] {
			t.Errorf("%v: implausible percentiles %+v", mode, res.Percentiles)
		}
		if res.ForkMean <= 0 {
			t.Errorf("%v: fork mean = %f", mode, res.ForkMean)
		}
	}
}

func TestRunLatencyZipfian(t *testing.T) {
	if testing.Short() {
		t.Skip("latency benchmark in -short mode")
	}
	cfg := LatencyConfig{
		Store: Config{
			ArenaBytes: 1 << 25,
			TableCap:   1 << 13,
			Mode:       core.ForkOnDemand,
			Threshold:  1000,
		},
		Keys:      2000,
		ValueSize: 32,
		Requests:  3000,
		LoadRatio: 0.3,
		Seed:      5,
		Runs:      1,
		Zipfian:   true,
	}
	res, err := RunLatency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots == 0 {
		t.Error("zipfian run took no snapshots")
	}
	if res.Percentiles[50] < 0 || res.Percentiles[99.99] < res.Percentiles[50] {
		t.Errorf("implausible percentiles: %+v", res.Percentiles)
	}
}
