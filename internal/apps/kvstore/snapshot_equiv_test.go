package kvstore

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
)

// readAll drains a simulated file.
func readAll(t *testing.T, f *fs.File) []byte {
	t.Helper()
	data := make([]byte, f.Size())
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return data
}

// TestSnapshotEquivalence pins the deprecation contract: the legacy
// Snapshot entry point must produce byte-identical dumps and identical
// fork bookkeeping to SnapshotNow, its replacement.
func TestSnapshotEquivalence(t *testing.T) {
	mk := func() (*kernel.Kernel, *Store) {
		k := kernel.New()
		s, err := New(k, testConfig(core.ForkOnDemand))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Populate(200, 48); err != nil {
			t.Fatal(err)
		}
		return k, s
	}
	oldKern, oldStore := mk()
	newKern, newStore := mk()
	defer oldStore.Close()
	defer newStore.Close()

	oldOut := oldKern.FS().Create("old.rdb")
	newOut := newKern.FS().Create("new.rdb")
	if err := oldStore.Snapshot(oldOut); err != nil {
		t.Fatal(err)
	}
	if err := newStore.SnapshotNow(newOut); err != nil {
		t.Fatal(err)
	}
	oldStore.WaitSnapshots()
	newStore.WaitSnapshots()

	oldDump, newDump := readAll(t, oldOut), readAll(t, newOut)
	if len(oldDump) == 0 {
		t.Fatal("legacy Snapshot produced an empty dump")
	}
	if !bytes.Equal(oldDump, newDump) {
		t.Errorf("dumps differ: legacy %d bytes, SnapshotNow %d bytes",
			len(oldDump), len(newDump))
	}
	for name, s := range map[string]*Store{"legacy": oldStore, "new": newStore} {
		if s.Snapshots() != 1 || s.ForkTimes.N() != 1 {
			t.Errorf("%s: snapshots=%d forks=%d, want 1/1",
				name, s.Snapshots(), s.ForkTimes.N())
		}
		if last, ok := s.Snapshotter().LastSnapshot(); !ok || last.Err != nil {
			t.Errorf("%s: LastSnapshot = %+v ok=%v", name, last, ok)
		}
	}
}
