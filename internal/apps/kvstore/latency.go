package kvstore

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// The latency benchmark reproduces the paper's memtier setup (Table 4):
// clients issue SET requests at a fixed arrival rate while the server,
// single-threaded like Redis, serves them in order and periodically
// snapshots via fork. Request latency is queueing delay plus service
// time; during a fork the server is unresponsive and queued requests
// absorb the blocking time — the tail-latency effect the paper reports.
//
// Arrivals are scheduled on a virtual timeline (arrival_i = i/rate) and
// each request's completion is max(previous completion, arrival) plus
// its *measured* service time, so the queueing model is analytic but
// every service and fork cost is real simulated-kernel work.

// LatencyConfig parameterizes the benchmark.
type LatencyConfig struct {
	Store     Config
	Keys      int     // preloaded keys
	ValueSize int     // value bytes per SET
	Requests  int     // total requests to issue
	LoadRatio float64 // arrival rate as a fraction of measured capacity
	Seed      int64
	// Runs repeats the whole benchmark and reports, per percentile, the
	// minimum across runs. Systematic latency sources (the fork block,
	// post-snapshot copy-on-write) recur at the same points in every
	// run and survive the minimum; random host-side pauses (GC,
	// scheduling) do not. Defaults to 3.
	Runs int
	// Zipfian selects a skewed (s=1.1) key popularity distribution
	// instead of uniform-random, the hot-key pattern real caches see.
	// Skew concentrates post-snapshot copy-on-write on fewer pages.
	Zipfian bool
}

// LatencyResult is the Table 4 + Table 5 output for one engine.
type LatencyResult struct {
	Mode        core.ForkMode
	Percentiles map[float64]float64 // percentile -> latency ms
	ForkMean    float64             // ms, Table 5
	ForkStdDev  float64             // ms, Table 5
	Snapshots   int
	MeanRate    float64 // requests/s actually simulated
}

// LatencyPercentiles are the rows of Table 4.
var LatencyPercentiles = []float64{50, 90, 95, 99, 99.9, 99.99}

// RunLatency executes the benchmark for one fork engine.
func RunLatency(cfg LatencyConfig) (LatencyResult, error) {
	runs := cfg.Runs
	if runs <= 0 {
		runs = 3
	}
	var out LatencyResult
	for r := 0; r < runs; r++ {
		// Level the heap between runs: the benchmark measures µs-scale
		// service times, and garbage left by a previous run (or previous
		// experiment) otherwise lands as GC pauses inside one engine's
		// pass.
		runtime.GC()
		res, err := runLatencyOnce(cfg, cfg.Seed+int64(r))
		if err != nil {
			return LatencyResult{}, err
		}
		if r == 0 {
			out = res
			continue
		}
		for p, v := range res.Percentiles {
			if v < out.Percentiles[p] {
				out.Percentiles[p] = v
			}
		}
		if res.ForkMean < out.ForkMean {
			out.ForkMean, out.ForkStdDev = res.ForkMean, res.ForkStdDev
		}
	}
	return out, nil
}

// runLatencyOnce performs one full benchmark pass on a fresh store.
func runLatencyOnce(cfg LatencyConfig, seed int64) (LatencyResult, error) {
	k := kernel.New()
	storeCfg := cfg.Store
	if storeCfg.SnapshotIODelay == 0 {
		storeCfg.SnapshotIODelay = time.Millisecond
	}
	st, err := New(k, storeCfg)
	if err != nil {
		return LatencyResult{}, err
	}
	defer st.Close()
	if err := st.Populate(cfg.Keys, cfg.ValueSize); err != nil {
		return LatencyResult{}, err
	}

	rng := rand.New(rand.NewSource(seed))
	val := make([]byte, cfg.ValueSize)
	nextKey := func() []byte { return Key(rng.Intn(cfg.Keys)) }
	if cfg.Zipfian {
		z := rand.NewZipf(rng, 1.1, 1, uint64(cfg.Keys-1))
		nextKey = func() []byte { return Key(int(z.Uint64())) }
	}

	// Calibrate: measure raw SET capacity without snapshots.
	st.SnapshotThreshold = 0
	calN := 2000
	calStart := time.Now()
	for i := 0; i < calN; i++ {
		if _, err := st.Set(nextKey(), val); err != nil {
			return LatencyResult{}, err
		}
	}
	capacity := float64(calN) / time.Since(calStart).Seconds()
	rate := capacity * cfg.LoadRatio
	if rate <= 0 {
		return LatencyResult{}, fmt.Errorf("kvstore: degenerate calibration rate %f", rate)
	}
	interarrival := time.Duration(float64(time.Second) / rate)

	// Benchmark proper.
	st.SnapshotThreshold = cfg.Store.Threshold
	st.ForkTimes = stats.Sample{}
	var lat stats.Sample
	virtualNow := time.Duration(0) // completion time of previous request
	for i := 0; i < cfg.Requests; i++ {
		arrival := time.Duration(i) * interarrival
		if virtualNow < arrival {
			virtualNow = arrival
		}
		svcStart := time.Now()
		if _, err := st.Set(nextKey(), val); err != nil {
			return LatencyResult{}, err
		}
		virtualNow += time.Since(svcStart)
		lat.AddDuration(virtualNow - arrival)
	}
	st.WaitSnapshots()

	res := LatencyResult{
		Mode:        cfg.Store.Mode,
		Percentiles: make(map[float64]float64, len(LatencyPercentiles)),
		ForkMean:    st.ForkTimes.Mean(),
		ForkStdDev:  st.ForkTimes.StdDev(),
		Snapshots:   st.Snapshots(),
		MeanRate:    rate,
	}
	for _, p := range LatencyPercentiles {
		res.Percentiles[p] = lat.Percentile(p)
	}
	return res, nil
}
