// Package kvstore implements the Redis-style workload of the paper's
// §5.3.3: an in-memory key-value store whose data lives in simulated
// process memory, snapshotted by forking so the child can serialize a
// consistent view while the parent keeps serving requests. The fork
// call blocks the request loop — exactly the latency source the paper
// measures in Tables 4 and 5.
package kvstore

import (
	"fmt"
	"time"

	"repro/internal/apps/simalloc"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/stats"
	"repro/internal/tenant"
)

// Store is the simulated Redis instance.
type Store struct {
	kern  *kernel.Kernel
	proc  *kernel.Process
	arena *simalloc.Arena
	table *simalloc.HashTable
	snap  *kernel.Snapshotter

	mode core.ForkMode
	// SnapshotThreshold is the "save after N changed keys" config
	// (Redis defaults to 10000).
	SnapshotThreshold int
	dirty             int

	// ForkTimes records the duration of each snapshot fork taken from
	// the serving path (SnapshotNow and threshold-triggered saves) — the
	// Redis latest_fork_usec metric of Table 5. Timer-driven snapshots
	// are aggregated in Snapshotter().Totals() instead, since this
	// sample is not safe to append from a background goroutine.
	ForkTimes stats.Sample
	ioDelay   time.Duration
}

// Config sizes a Store.
type Config struct {
	ArenaBytes uint64        // memory region holding table + data
	TableCap   uint64        // hash buckets (power of two)
	Mode       core.ForkMode // fork engine used for snapshots
	Threshold  int           // changed keys per snapshot (<=0: never)
	// SnapshotEvery runs a background BGSAVE-style snapshot on this
	// period, the "periodic snapshots under steady load" setup of the
	// paper's Redis experiment. Zero means snapshots happen only on
	// demand (SnapshotNow) or via Threshold.
	SnapshotEvery time.Duration
	// SnapshotIODelay throttles the child serializer: after each batch
	// of buckets it sleeps this long, modelling the disk-bound child
	// Redis runs on a spare core. Without it the child's memory scan
	// competes for the CPU with the serving loop, which the paper's
	// 16-core testbed does not exhibit. Zero disables throttling.
	SnapshotIODelay time.Duration
	// Tenant, when set, makes the store's process — and so every frame
	// of its arena and snapshot lineage — belong to that tenant: frames
	// are charged against its quota and snapshot forks pass its
	// admission control.
	Tenant *tenant.Tenant
}

// New creates a store inside a fresh process of k (owned by cfg.Tenant
// when set).
func New(k *kernel.Kernel, cfg Config) (*Store, error) {
	proc := k.NewTenantProcess(cfg.Tenant)
	arena, err := simalloc.NewArena(proc, cfg.ArenaBytes)
	if err != nil {
		return nil, err
	}
	table, err := simalloc.NewHashTable(arena, cfg.TableCap)
	if err != nil {
		return nil, err
	}
	s := &Store{
		kern:              k,
		proc:              proc,
		arena:             arena,
		table:             table,
		mode:              cfg.Mode,
		SnapshotThreshold: cfg.Threshold,
		ioDelay:           cfg.SnapshotIODelay,
	}
	snap, err := proc.StartSnapshotter(cfg.SnapshotEvery,
		kernel.WithSnapshotMode(cfg.Mode),
		kernel.WithSnapshotChild(s.serializer(nil)))
	if err != nil {
		proc.Exit()
		return nil, err
	}
	s.snap = snap
	return s, nil
}

// Layout captures the store's Go-side handles — the "registers" that
// live outside simulated memory. Persisted (e.g. as JSON beside a
// durable checkpoint of the store's process) it is exactly what Adopt
// needs to rebuild a serving Store around a restored process image.
type Layout struct {
	ArenaBase uint64 `json:"arena_base"`
	ArenaSize uint64 `json:"arena_size"`
	ArenaUsed uint64 `json:"arena_used"`
	TableBase uint64 `json:"table_base"`
	TableCap  uint64 `json:"table_cap"`
	TableLive uint64 `json:"table_live"`
}

// Layout returns the store's current Go-side handles.
func (s *Store) Layout() Layout {
	return Layout{
		ArenaBase: uint64(s.arena.Base()),
		ArenaSize: s.arena.Size(),
		ArenaUsed: s.arena.Used(),
		TableBase: uint64(s.table.Buckets()),
		TableCap:  s.table.Capacity(),
		TableLive: s.table.Len(),
	}
}

// Adopt rebuilds a Store around proc — typically a process just
// restored from a durable checkpoint — using the Layout saved when the
// checkpoint was written. The store serves (and snapshots) exactly as
// one built by New; its data pages fault in lazily from the checkpoint
// on first touch.
func Adopt(k *kernel.Kernel, proc *kernel.Process, l Layout, cfg Config) (*Store, error) {
	arena, err := simalloc.Adopt(proc, addr.V(l.ArenaBase), l.ArenaSize, l.ArenaUsed)
	if err != nil {
		return nil, err
	}
	table, err := simalloc.AdoptHashTable(arena, addr.V(l.TableBase), l.TableCap, l.TableLive)
	if err != nil {
		return nil, err
	}
	s := &Store{
		kern:              k,
		proc:              proc,
		arena:             arena,
		table:             table,
		mode:              cfg.Mode,
		SnapshotThreshold: cfg.Threshold,
		ioDelay:           cfg.SnapshotIODelay,
	}
	snap, err := proc.StartSnapshotter(cfg.SnapshotEvery,
		kernel.WithSnapshotMode(cfg.Mode),
		kernel.WithSnapshotChild(s.serializer(nil)))
	if err != nil {
		return nil, err
	}
	s.snap = snap
	return s, nil
}

// Process returns the server process.
func (s *Store) Process() *kernel.Process { return s.proc }

// Snapshotter returns the store's snapshot engine — the fork epoch it
// exposes is how the serving tier tags requests as fork-coincident.
func (s *Store) Snapshotter() *kernel.Snapshotter { return s.snap }

// Mode returns the fork engine used for snapshots.
func (s *Store) Mode() core.ForkMode { return s.mode }

// Len returns the number of keys.
func (s *Store) Len() uint64 { return s.table.Len() }

// Snapshots returns how many snapshots have been taken (on-demand,
// threshold-triggered, and timer-driven alike).
func (s *Store) Snapshots() int { return int(s.snap.Snapshots()) }

// Close stops the snapshotter (waiting out in-flight serializer
// children) and terminates the server process.
func (s *Store) Close() {
	s.snap.Stop()
	s.proc.Exit()
}

// Populate loads n keys with valSize-byte values, the pre-experiment
// data load (the paper uses 996 MB).
func (s *Store) Populate(n int, valSize int) error {
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < n; i++ {
		if err := s.table.Put(key(i), val); err != nil {
			return fmt.Errorf("kvstore: populate key %d: %w", i, err)
		}
	}
	return nil
}

// key renders the canonical benchmark key for index i.
func key(i int) []byte { return []byte(fmt.Sprintf("memtier-%012d", i)) }

// Key exposes the canonical key encoding for drivers.
func Key(i int) []byte { return key(i) }

// Set stores a key, possibly triggering a snapshot per the threshold
// policy. It returns whether a snapshot ran.
func (s *Store) Set(k, v []byte) (bool, error) {
	if err := s.table.Put(k, v); err != nil {
		return false, err
	}
	s.dirty++
	if s.SnapshotThreshold > 0 && s.dirty >= s.SnapshotThreshold {
		s.dirty = 0
		if err := s.SnapshotNow(nil); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// Get fetches a key.
func (s *Store) Get(k []byte) ([]byte, bool, error) {
	return s.table.Get(k)
}

// Delete removes a key, reporting whether it existed.
func (s *Store) Delete(k []byte) (bool, error) {
	ok, err := s.table.Delete(k)
	if err == nil && ok {
		s.dirty++
	}
	return ok, err
}

// SnapshotNow forks the server through its Snapshotter and has the
// child serialize the table into out (discarded when nil) on a
// background goroutine, so the parent — like Redis — is blocked only
// for the duration of the fork call itself. The fork duration is
// recorded in ForkTimes.
func (s *Store) SnapshotNow(out *fs.File) error {
	st, err := s.snap.SnapshotWith(s.serializer(out))
	if err != nil {
		return fmt.Errorf("kvstore: snapshot fork: %w", err)
	}
	s.ForkTimes.AddDuration(st.ForkLatency)
	return nil
}

// serializer builds the child-side dump routine for one snapshot. It
// binds the table layout to the child only through View handles —
// immutable layout fields plus the child's frozen copy-on-write memory
// — because the routine runs on a background goroutine while the
// parent keeps allocating and inserting.
func (s *Store) serializer(out *fs.File) func(*kernel.Process) error {
	ioDelay := s.ioDelay
	return func(child *kernel.Process) error {
		table := s.table.View(s.arena.View(child))
		var off uint64
		entries := 0
		return table.Range(func(k, v []byte) bool {
			if out != nil {
				if _, err := out.WriteAt(k, off); err != nil {
					return false
				}
				off += uint64(len(k))
				if _, err := out.WriteAt(v, off); err != nil {
					return false
				}
				off += uint64(len(v))
			}
			if entries++; ioDelay > 0 && entries%1024 == 0 {
				time.Sleep(ioDelay) // the batch "hits the disk"
			}
			return true
		})
	}
}

// GetIn fetches a key through proc's view of the table. proc is
// typically a freshly forked snapshot child: the lookup is served from
// its frozen copy-on-write memory, giving the caller a consistent
// point-in-time read while the parent keeps mutating — the serverless
// invocation path of the serving tier.
func (s *Store) GetIn(proc *kernel.Process, k []byte) ([]byte, bool, error) {
	return s.table.View(s.arena.View(proc)).Get(k)
}

// WaitSnapshots blocks until all snapshot children have exited, so
// tests and experiments can check for leaks.
func (s *Store) WaitSnapshots() {
	for s.kern.NumProcesses() > 1 {
		time.Sleep(time.Millisecond)
	}
}
