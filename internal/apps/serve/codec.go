package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ResponseFlags ride on every response, whichever wire protocol
// carries them.
type ResponseFlags uint8

const (
	// FlagForkCoincident marks a response whose handling overlapped a
	// snapshot fork — the server-side half of the SLO harness's
	// tail-latency attribution.
	FlagForkCoincident ResponseFlags = 1 << 0
	// FlagAppError marks an application-level failure; the payload is
	// the error text.
	FlagAppError ResponseFlags = 1 << 1
)

// Codec frames request and response payloads on a connection. One
// codec value serves both roles: the server reads requests and writes
// responses; the load generator writes requests and reads responses.
// Implementations must be stateless (value receivers shared across
// connections).
type Codec interface {
	Name() string
	// Server side.
	ReadRequest(r *bufio.Reader) ([]byte, error)
	WriteResponse(w *bufio.Writer, payload []byte, flags ResponseFlags) error
	// Client side.
	WriteRequest(w *bufio.Writer, payload []byte) error
	ReadResponse(r *bufio.Reader) ([]byte, ResponseFlags, error)
}

// NewReader and NewWriter size the buffered connection endpoints the
// way the server does; clients (tests, the SLO generator) use them so
// both sides agree on framing-friendly buffer sizes.
func NewReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, 16<<10) }

// NewWriter is NewReader's write-side counterpart.
func NewWriter(w io.Writer) *bufio.Writer { return bufio.NewWriterSize(w, 16<<10) }

func newReader(r io.Reader) *bufio.Reader { return NewReader(r) }
func newWriter(w io.Writer) *bufio.Writer { return NewWriter(w) }

// maxFrame bounds a single framed payload; larger lengths indicate a
// corrupt or hostile stream.
const maxFrame = 1 << 24

// BinaryCodec is the kv store's wire protocol:
//
//	request:  u32le payload length | payload
//	response: u32le frame length   | flags u8 | payload
//
// (the response frame length counts the flags byte, so it is
// 1+len(payload)).
type BinaryCodec struct{}

// Name identifies the protocol in schemas and flags.
func (BinaryCodec) Name() string { return "binary" }

// WriteRequest frames one request payload.
func (BinaryCodec) WriteRequest(w *bufio.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRequest reads one framed request payload; io.EOF at a frame
// boundary is a clean end of stream.
func (BinaryCodec) ReadRequest(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("serve: request frame of %d bytes", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteResponse frames one response payload with its flags.
func (BinaryCodec) WriteResponse(w *bufio.Writer, payload []byte, flags ResponseFlags) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(flags)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadResponse reads one framed response, returning its payload and
// flags.
func (BinaryCodec) ReadResponse(r *bufio.Reader) ([]byte, ResponseFlags, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return nil, 0, fmt.Errorf("serve: response frame of %d bytes", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, 0, err
	}
	return p[1:], ResponseFlags(p[0]), nil
}

// HTTPCodec speaks keep-alive HTTP/1.1 for the httpd app. A request
// payload is the URL path (it must be CRLF- and space-free); the
// response body is the raw payload, with the fork-coincidence flag in
// the X-Odf-Fork-Coincident header and application errors mapped to
// status 500.
type HTTPCodec struct{}

// Name identifies the protocol in schemas and flags.
func (HTTPCodec) Name() string { return "http" }

// WriteRequest emits one GET with the payload as its path.
func (HTTPCodec) WriteRequest(w *bufio.Writer, payload []byte) error {
	if _, err := fmt.Fprintf(w, "GET %s HTTP/1.1\r\nHost: odf\r\n\r\n", payload); err != nil {
		return err
	}
	return nil
}

// ReadRequest parses one request, returning the path as the payload.
func (HTTPCodec) ReadRequest(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if err := discardHeaders(r); err != nil {
		return nil, err
	}
	parts := strings.Fields(strings.TrimRight(line, "\r\n"))
	if len(parts) != 3 || parts[0] != "GET" {
		return nil, fmt.Errorf("serve: malformed request line %q", line)
	}
	return []byte(parts[1]), nil
}

// WriteResponse emits one HTTP/1.1 response carrying the payload.
func (HTTPCodec) WriteResponse(w *bufio.Writer, payload []byte, flags ResponseFlags) error {
	status := "200 OK"
	if flags&FlagAppError != 0 {
		status = "500 Internal Server Error"
	}
	fork := 0
	if flags&FlagForkCoincident != 0 {
		fork = 1
	}
	if _, err := fmt.Fprintf(w,
		"HTTP/1.1 %s\r\nX-Odf-Fork-Coincident: %d\r\nContent-Length: %d\r\n\r\n",
		status, fork, len(payload)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadResponse parses one response into payload and flags.
func (HTTPCodec) ReadResponse(r *bufio.Reader) ([]byte, ResponseFlags, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, 0, err
	}
	var flags ResponseFlags
	if !strings.HasPrefix(line, "HTTP/1.1 ") {
		return nil, 0, fmt.Errorf("serve: malformed status line %q", line)
	}
	if !strings.HasPrefix(line[9:], "200") {
		flags |= FlagAppError
	}
	length := -1
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return nil, 0, err
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		name, val, ok := strings.Cut(h, ":")
		if !ok {
			return nil, 0, fmt.Errorf("serve: malformed header %q", h)
		}
		val = strings.TrimSpace(val)
		switch strings.ToLower(name) {
		case "content-length":
			if length, err = strconv.Atoi(val); err != nil {
				return nil, 0, fmt.Errorf("serve: content-length %q", val)
			}
		case "x-odf-fork-coincident":
			if val == "1" {
				flags |= FlagForkCoincident
			}
		}
	}
	if length < 0 || length > maxFrame {
		return nil, 0, fmt.Errorf("serve: response without a sane Content-Length (%d)", length)
	}
	p := make([]byte, length)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, 0, err
	}
	return p, flags, nil
}

// discardHeaders consumes header lines up to and including the blank
// line that ends them.
func discardHeaders(r *bufio.Reader) error {
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		if h == "\r\n" || h == "\n" {
			return nil
		}
	}
}
