package serve

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/apps/kvstore"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/tenant"
)

func TestTenantBinaryCodecFraming(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	cd := TenantBinaryCodec{Tenant: 7}
	if err := cd.WriteRequest(w, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	req, err := TenantBinaryCodec{}.ReadRequest(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	id, payload, err := SplitTenant(req)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || string(payload) != "hello" {
		t.Fatalf("round trip = (%d, %q), want (7, hello)", id, payload)
	}
	if !bytes.Equal(req, EncodeTenant(7, []byte("hello"))) {
		t.Fatalf("EncodeTenant disagrees with the wire form: %x vs %x",
			EncodeTenant(7, []byte("hello")), req)
	}
	if _, _, err := SplitTenant([]byte{1, 2}); err == nil {
		t.Fatal("SplitTenant accepted a truncated request")
	}
}

// tenantFixture is a 2-tenant dispatcher over one kernel: each tenant
// owns a warm kv store; requests are served from per-request clones.
func tenantFixture(t *testing.T) (*kernel.Kernel, *Dispatcher, [2]uint32) {
	t.Helper()
	k := kernel.New()
	d := NewDispatcher()
	var ids [2]uint32
	for i, name := range []string{"alpha", "beta"} {
		tn, err := k.Tenants().Create(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testKVConfig(core.ForkOnDemand)
		cfg.Tenant = tn
		cfg.Keys = 100
		app, err := NewKV(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { app.Close() })
		if err := app.Warm(); err != nil {
			t.Fatal(err)
		}
		ids[i] = uint32(tn.TenantID())
		d.AddLane(ids[i], app, true)
	}
	return k, d, ids
}

func TestDispatcherRoutesAndIsolates(t *testing.T) {
	k, d, ids := tenantFixture(t)

	// Distinct writes land in distinct lanes.
	for i, id := range ids {
		val := []byte{byte('a' + i)}
		resp, err := d.Handle(EncodeTenant(id, EncodeSet([]byte("who"), val)))
		if err != nil {
			t.Fatal(err)
		}
		if resp[0] != StatusOK {
			t.Fatalf("tenant %d SET status %d", id, resp[0])
		}
	}
	for i, id := range ids {
		resp, err := d.Handle(EncodeTenant(id, EncodeGet([]byte("who"))))
		if err != nil {
			t.Fatal(err)
		}
		st, val, err := DecodeKVResponse(resp)
		if err != nil || st != StatusOK {
			t.Fatalf("tenant %d GET = status %d, %v", id, st, err)
		}
		if want := byte('a' + i); len(val) != 1 || val[0] != want {
			t.Fatalf("tenant %d read %q, want %q (cross-tenant leak)", id, val, []byte{want})
		}
	}
	// Each GET was a serverless invocation: one clone per request.
	for _, l := range d.Lanes() {
		if snaps := l.App().Snapshotter().Snapshots(); snaps < 2 {
			t.Fatalf("lane served %d invocations but took %d clones", l.Invocations(), snaps)
		}
	}
	// Unknown tenants are refused.
	if _, err := d.Handle(EncodeTenant(9999, EncodeGet([]byte("who")))); err == nil {
		t.Fatal("request for an unregistered tenant was served")
	}

	// The clones charged and uncharged against their tenants; clone
	// invocations are synchronous, so the children have exited and
	// accounting must still cross-check.
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherOverTCP(t *testing.T) {
	_, d, ids := tenantFixture(t)
	srv, err := Listen(d, TenantBinaryCodec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// One connection per tenant, each stamping its own id.
	for i, id := range ids {
		cl := dial(t, srv, TenantBinaryCodec{Tenant: id})
		val := []byte{byte('x' + i)}
		resp, flags := cl.roundTrip(t, EncodeSet([]byte("k"), val))
		if flags&FlagAppError != 0 || resp[0] != StatusOK {
			t.Fatalf("tenant %d SET over TCP: flags %b resp %x", id, flags, resp)
		}
	}
	for i, id := range ids {
		cl := dial(t, srv, TenantBinaryCodec{Tenant: id})
		resp, flags := cl.roundTrip(t, EncodeGet([]byte("k")))
		if flags&FlagAppError != 0 {
			t.Fatalf("tenant %d GET over TCP failed: %s", id, resp)
		}
		st, val, err := DecodeKVResponse(resp)
		if err != nil || st != StatusOK {
			t.Fatalf("tenant %d GET = status %d, %v", id, st, err)
		}
		if want := byte('x' + i); len(val) != 1 || val[0] != want {
			t.Fatalf("tenant %d read %q over TCP, want %q", id, val, []byte{want})
		}
	}
	if srv.Served() != 4 {
		t.Fatalf("server answered %d requests, want 4", srv.Served())
	}
}

// TestCloneAdmissionSurfacesQuota drives one lane over its quota and
// checks that clone invocations start failing with ErrQuotaExceeded
// rather than ErrNoMem.
func TestCloneAdmissionSurfacesQuota(t *testing.T) {
	k := kernel.New()
	k.Tenants().SetAdmitTimeout(0)            // fail fast instead of queueing
	tn, err := k.Tenants().Create("alpha", 8) // far below the warm set
	if err != nil {
		t.Fatal(err)
	}
	cfg := testKVConfig(core.ForkOnDemand)
	cfg.Tenant = tn
	cfg.Keys = 200
	app, err := NewKV(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Warm(); err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher()
	l := d.AddLane(uint32(tn.TenantID()), app, true)

	_, err = l.Serve(EncodeGet(kvstore.Key(0)))
	if err == nil {
		t.Fatal("over-quota clone admitted with a zero admission timeout")
	}
	if !errors.Is(err, tenant.ErrQuotaExceeded) {
		t.Fatalf("over-quota clone failed with %v, want ErrQuotaExceeded", err)
	}
	if l.CloneErrs() != 1 {
		t.Fatalf("CloneErrs = %d, want 1", l.CloneErrs())
	}
}
