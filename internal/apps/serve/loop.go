package serve

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/stats"
)

// RunLoop is the in-process experiment driver over the App interface —
// the same virtual-time queueing model the kvstore latency benchmark
// pioneered, generalized so every application experiment goes through
// one door. Arrivals are scheduled on a virtual timeline (arrival_i =
// i/rate) and each request's completion is max(previous completion,
// arrival) plus its *measured* service time: the model is analytic,
// but every service and fork cost is real simulated-kernel work.
//
// With LoadRatio > 0 the driver first calibrates raw capacity (with
// snapshots gated off) and offers LoadRatio of it; with LoadRatio <= 0
// it runs closed-loop — each request leaves as the previous completes,
// so latency is pure service time, which is the httpd bench's
// (wrk-style) regime.

// LoopConfig parameterizes one driver run.
type LoopConfig struct {
	// New builds a fresh app for each run; the driver calls Warm and
	// Close around it.
	New func() (App, error)
	// NewRequest returns the per-run request generator; rng is seeded
	// per run (Seed + run index).
	NewRequest func(rng *rand.Rand) func(i int) []byte
	// Requests is the measured request count per run.
	Requests int
	// LoadRatio offers this fraction of calibrated capacity; <= 0 runs
	// closed-loop with no calibration phase.
	LoadRatio float64
	// CalibrateN sizes the calibration phase (default 2000).
	CalibrateN int
	// Seed is the base RNG seed.
	Seed int64
	// Runs repeats the benchmark, reporting per-percentile minima so
	// that systematic latency (fork pauses, post-snapshot COW) survives
	// and host-side noise (GC, scheduling) does not. Defaults to 3.
	Runs int
	// Percentiles selects the reported rows.
	Percentiles []float64
	// Gate, when set, is called with measuring=false before the
	// calibration phase and measuring=true before the measured phase —
	// the hook that disables threshold-triggered snapshots while
	// capacity is measured.
	Gate func(app App, measuring bool)
}

// LoopResult is one engine's outcome. Latencies are milliseconds.
type LoopResult struct {
	App         string
	Percentiles map[float64]float64 // percentile -> latency ms
	MeanMS      float64
	MaxMS       float64
	ForkMean    float64 // ms, snapshot fork pause
	ForkStdDev  float64 // ms
	Snapshots   int
	MeanRate    float64 // offered req/s (open loop) or achieved (closed)
}

// RunLoop executes the configured benchmark, min-merging across runs.
func RunLoop(cfg LoopConfig) (LoopResult, error) {
	runs := cfg.Runs
	if runs <= 0 {
		runs = 3
	}
	var out LoopResult
	for r := 0; r < runs; r++ {
		// Level the heap between runs: the driver measures µs-scale
		// service times, and garbage from a previous run otherwise lands
		// as GC pauses inside one engine's pass.
		runtime.GC()
		res, err := runLoopOnce(cfg, cfg.Seed+int64(r))
		if err != nil {
			return LoopResult{}, err
		}
		if r == 0 {
			out = res
			continue
		}
		for p, v := range res.Percentiles {
			if v < out.Percentiles[p] {
				out.Percentiles[p] = v
			}
		}
		if res.MeanMS < out.MeanMS {
			out.MeanMS = res.MeanMS
		}
		if res.MaxMS < out.MaxMS {
			out.MaxMS = res.MaxMS
		}
		if res.ForkMean > 0 && (out.ForkMean == 0 || res.ForkMean < out.ForkMean) {
			out.ForkMean, out.ForkStdDev = res.ForkMean, res.ForkStdDev
		}
	}
	return out, nil
}

func runLoopOnce(cfg LoopConfig, seed int64) (LoopResult, error) {
	app, err := cfg.New()
	if err != nil {
		return LoopResult{}, err
	}
	defer app.Close()
	if err := app.Warm(); err != nil {
		return LoopResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	next := cfg.NewRequest(rng)

	open := cfg.LoadRatio > 0
	var interarrival time.Duration
	var rate float64
	if open {
		if cfg.Gate != nil {
			cfg.Gate(app, false)
		}
		calN := cfg.CalibrateN
		if calN <= 0 {
			calN = 2000
		}
		t0 := time.Now()
		for i := 0; i < calN; i++ {
			if _, err := app.Handle(next(i)); err != nil {
				return LoopResult{}, fmt.Errorf("serve: calibration: %w", err)
			}
		}
		capacity := float64(calN) / time.Since(t0).Seconds()
		rate = capacity * cfg.LoadRatio
		if rate <= 0 {
			return LoopResult{}, fmt.Errorf("serve: degenerate calibration rate %f", rate)
		}
		interarrival = time.Duration(float64(time.Second) / rate)
		if cfg.Gate != nil {
			cfg.Gate(app, true)
		}
	}

	// The measured phase starts from the snapshotter's current totals,
	// so calibration-phase forks (none, when the gate does its job) do
	// not pollute the fork-pause report.
	base := app.Snapshotter().Totals()
	var lat stats.Sample
	virtualNow := time.Duration(0)
	for i := 0; i < cfg.Requests; i++ {
		arrival := virtualNow
		if open {
			arrival = time.Duration(i) * interarrival
			if virtualNow < arrival {
				virtualNow = arrival
			}
		}
		t0 := time.Now()
		if _, err := app.Handle(next(i)); err != nil {
			return LoopResult{}, fmt.Errorf("serve: request %d: %w", i, err)
		}
		virtualNow += time.Since(t0)
		lat.AddDuration(virtualNow - arrival)
	}
	tot := app.Snapshotter().Totals()

	if !open && virtualNow > 0 {
		rate = float64(cfg.Requests) / virtualNow.Seconds()
	}
	res := LoopResult{
		App:         app.Name(),
		Percentiles: make(map[float64]float64, len(cfg.Percentiles)),
		MeanMS:      lat.Mean(),
		MaxMS:       lat.Max(),
		ForkMean:    ms(tot.ForkMean),
		ForkStdDev:  ms(tot.ForkStdDev),
		Snapshots:   int(tot.Snapshots - base.Snapshots),
		MeanRate:    rate,
	}
	for _, p := range cfg.Percentiles {
		res.Percentiles[p] = lat.Percentile(p)
	}
	return res, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
