package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernel"
	"repro/internal/stats"
)

// The multi-tenant serving tier: a TenantBinaryCodec that carries a
// tenant id on every request, and a Dispatcher app that routes each
// request to the matching tenant's warm snapshot lineage. Together
// they are the wire side of the odf-serverless daemon — one listener,
// N tenants, each invocation optionally served from a microsecond
// clone of the tenant's warm process (the paper's fork-as-cold-start
// elimination, multiplexed across isolation domains).

// TenantBinaryCodec is BinaryCodec with a tenant id on every request:
//
//	request:  u32le frame length | u32le tenant id | payload
//	response: u32le frame length | flags u8 | payload
//
// (the request frame length counts the tenant field, so it is
// 4+len(payload); responses are identical to BinaryCodec's). The
// zero value reads any tenant's requests server-side; clients set
// Tenant to stamp theirs.
type TenantBinaryCodec struct {
	// Tenant is the id stamped on requests this codec value writes.
	Tenant uint32
}

// Name identifies the protocol in schemas and flags.
func (TenantBinaryCodec) Name() string { return "tenant-binary" }

// WriteRequest frames one request payload under the codec's tenant id.
func (c TenantBinaryCodec) WriteRequest(w *bufio.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+4))
	binary.LittleEndian.PutUint32(hdr[4:], c.Tenant)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRequest reads one framed request. The returned payload keeps the
// 4-byte tenant id at the front — SplitTenant recovers it — so the
// routing key travels with the request through the App interface.
func (TenantBinaryCodec) ReadRequest(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 4 || n > maxFrame {
		return nil, fmt.Errorf("serve: tenant request frame of %d bytes", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteResponse frames one response; the tenant protocol's responses
// are plain BinaryCodec responses.
func (TenantBinaryCodec) WriteResponse(w *bufio.Writer, payload []byte, flags ResponseFlags) error {
	return BinaryCodec{}.WriteResponse(w, payload, flags)
}

// ReadResponse reads one framed response.
func (TenantBinaryCodec) ReadResponse(r *bufio.Reader) ([]byte, ResponseFlags, error) {
	return BinaryCodec{}.ReadResponse(r)
}

// SplitTenant splits a tenant-framed request payload (as returned by
// TenantBinaryCodec.ReadRequest) into the tenant id and the inner
// payload.
func SplitTenant(req []byte) (uint32, []byte, error) {
	if len(req) < 4 {
		return 0, nil, fmt.Errorf("serve: tenant request of %d bytes", len(req))
	}
	return binary.LittleEndian.Uint32(req), req[4:], nil
}

// EncodeTenant prefixes payload with a tenant id, producing the request
// form Dispatcher.Handle expects (what TenantBinaryCodec.ReadRequest
// yields on the wire path). In-process drivers use it to call the
// dispatcher directly.
func EncodeTenant(tenantID uint32, payload []byte) []byte {
	p := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(p, tenantID)
	copy(p[4:], payload)
	return p
}

// CloneHandler is the serverless invocation surface: an app that can
// serve a request from a freshly forked clone of its warm process.
// child is the snapshot fork, already materialized when the handler
// runs; reads through it see the warm state frozen at the fork
// instant.
type CloneHandler interface {
	HandleClone(child *kernel.Process, req []byte) ([]byte, error)
}

// Lane is one tenant's entry in a Dispatcher: the tenant's warm app
// plus its invocation policy.
type Lane struct {
	id    uint32
	app   App
	clone bool

	invocations atomic.Uint64
	cloneErrs   atomic.Uint64

	// ForkTimes records each clone invocation's fork pause. Serve
	// appends to it without locking: lanes rely on the server tier's
	// request serialization, like every other App.
	ForkTimes stats.Sample
}

// App returns the lane's warm application.
func (l *Lane) App() App { return l.app }

// Invocations returns how many requests the lane has served.
func (l *Lane) Invocations() uint64 { return l.invocations.Load() }

// CloneErrs returns how many invocations failed to fork a clone —
// under tenant admission control these are the lane's quota
// rejections.
func (l *Lane) CloneErrs() uint64 { return l.cloneErrs.Load() }

// Serve handles one request payload (tenant prefix already stripped).
// On a clone-per-request lane backed by a CloneHandler, the warm
// process is forked, the request is served from the clone's frozen
// memory, and the clone exits — a full serverless invocation whose
// cold start is one on-demand fork. A fork refused by admission
// control (tenant over quota, queue full or timed out) surfaces here
// as the fork error.
func (l *Lane) Serve(payload []byte) ([]byte, error) {
	return l.ServeTagged(payload, 0)
}

// ServeTagged is Serve with a request correlation id: a nonzero rid is
// stamped onto the lane's warm address space for the invocation, so
// the admission wait, the snapshot fork, and the clone's faults all
// trace back to this request (the clone inherits the id at fork).
func (l *Lane) ServeTagged(payload []byte, rid uint64) ([]byte, error) {
	l.invocations.Add(1)
	if rid != 0 {
		if snap := l.app.Snapshotter(); snap != nil {
			sp := snap.Process().Space()
			sp.SetRequest(rid)
			defer sp.SetRequest(0)
		}
	}
	ch, ok := l.app.(CloneHandler)
	if !l.clone || !ok {
		return l.app.Handle(payload)
	}
	var resp []byte
	var herr error
	st, err := l.app.Snapshotter().SnapshotSync(func(child *kernel.Process) error {
		resp, herr = ch.HandleClone(child, payload)
		return herr
	})
	if err != nil {
		l.cloneErrs.Add(1)
		return nil, fmt.Errorf("serve: tenant %d clone: %w", l.id, err)
	}
	l.ForkTimes.AddDuration(st.ForkLatency)
	return resp, herr
}

// Dispatcher is the multi-tenant front door of the serving tier: an
// App whose Handle routes each tenant-framed request (TenantBinaryCodec
// framing) to the matching tenant's Lane. It is what odf-serverless
// listens with.
type Dispatcher struct {
	mu    sync.RWMutex
	lanes map[uint32]*Lane
	order []*Lane

	// obs, when set, mints a correlation id per dispatched request and
	// emits the enclosing request span; lanes stamp the id onto their
	// warm lineage for the invocation window.
	obs atomic.Pointer[Obs]
}

// SetObserver installs the request-observability hook. Safe to call
// while serving; nil detaches.
func (d *Dispatcher) SetObserver(o *Obs) { d.obs.Store(o) }

// NewDispatcher returns an empty dispatcher; add tenants with AddLane.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{lanes: make(map[uint32]*Lane)}
}

// AddLane registers app as tenant tenantID's lane. With clonePerRequest
// set (and app implementing CloneHandler), every request forks the warm
// process and is served from the clone — the serverless invocation
// model; otherwise requests go to the warm app directly.
func (d *Dispatcher) AddLane(tenantID uint32, app App, clonePerRequest bool) *Lane {
	l := &Lane{id: tenantID, app: app, clone: clonePerRequest}
	d.mu.Lock()
	d.lanes[tenantID] = l
	d.order = append(d.order, l)
	d.mu.Unlock()
	return l
}

// Lane returns tenant tenantID's lane (nil when absent).
func (d *Dispatcher) Lane(tenantID uint32) *Lane {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lanes[tenantID]
}

// Lanes returns the lanes in registration order.
func (d *Dispatcher) Lanes() []*Lane {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Lane, len(d.order))
	copy(out, d.order)
	return out
}

// Name identifies the app.
func (d *Dispatcher) Name() string { return "dispatch" }

// Warm warms every lane.
func (d *Dispatcher) Warm() error {
	for _, l := range d.Lanes() {
		if err := l.app.Warm(); err != nil {
			return fmt.Errorf("serve: tenant %d warm: %w", l.id, err)
		}
	}
	return nil
}

// Handle routes one tenant-framed request to its lane.
func (d *Dispatcher) Handle(req []byte) ([]byte, error) {
	id, payload, err := SplitTenant(req)
	if err != nil {
		return nil, err
	}
	l := d.Lane(id)
	if l == nil {
		return nil, fmt.Errorf("serve: no lane for tenant %d", id)
	}
	obs := d.obs.Load()
	if obs == nil {
		return l.Serve(payload)
	}
	rid := obs.Begin()
	start := time.Now()
	resp, herr := l.ServeTagged(payload, rid)
	obs.End(rid, uint64(id), start, herr != nil)
	return resp, herr
}

// Snapshot snapshots every lane's warm process.
func (d *Dispatcher) Snapshot() error {
	for _, l := range d.Lanes() {
		if err := l.app.Snapshot(); err != nil {
			return fmt.Errorf("serve: tenant %d snapshot: %w", l.id, err)
		}
	}
	return nil
}

// Snapshotter returns nil: a dispatcher multiplexes many lineages and
// has no single fork epoch. Per-request fork coincidence is meaningless
// on clone-per-request lanes anyway — every invocation is a fork.
func (d *Dispatcher) Snapshotter() *kernel.Snapshotter { return nil }

// Close closes every lane's app.
func (d *Dispatcher) Close() error {
	var first error
	for _, l := range d.Lanes() {
		if err := l.app.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
