// Package serve is the network tier of the reproduction: it runs the
// paper's applications (the Redis-like store, the Apache-prefork
// httpd) as real TCP servers, so that snapshot forks pause request
// handling the way they pause Redis in §5.3.3 — through the server
// process's address-space lock — and the pause is observed by real
// clients over real sockets rather than inferred by a queueing model.
//
// The pieces:
//
//   - App: the unified application surface. Anything that can serve a
//     request, snapshot itself by forking, and report its Snapshotter
//     plugs into both the TCP tier (Server) and the in-process
//     experiment driver (RunLoop).
//   - Codec: the wire protocol. BinaryCodec frames length-prefixed
//     request/response payloads for the kv store; HTTPCodec speaks
//     keep-alive HTTP/1.1 for the httpd app. Both carry a per-response
//     fork-coincidence flag, the tagging instrument of the SLO
//     harness (internal/slo).
//   - Server: a TCP listener with one goroutine per connection.
//     Handling is serialized across connections — the apps are
//     single-threaded, like Redis — but the snapshotter forks on its
//     own goroutine, so a fork genuinely stalls in-flight requests.
package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernel"
)

// App is the unified application surface of the serving tier.
//
// Handle is not required to be safe for concurrent use (the paper's
// servers are single-threaded); Server serializes calls. Snapshotter
// returns the app's snapshot engine — its fork epoch is how responses
// are tagged fork-coincident. An app multiplexing several lineages
// (Dispatcher) may return nil, in which case responses are never
// tagged.
type App interface {
	// Name identifies the app ("kv", "httpd") in results and schemas.
	Name() string
	// Warm performs the pre-experiment data load.
	Warm() error
	// Handle serves one request payload and returns the response
	// payload. A returned error is reported to the client as an
	// application-level failure; it does not tear down the server.
	Handle(req []byte) ([]byte, error)
	// Snapshot takes one on-demand snapshot (BGSAVE-style), pausing the
	// serving process for the fork's duration.
	Snapshot() error
	// Snapshotter exposes the app's snapshot engine.
	Snapshotter() *kernel.Snapshotter
	// Close stops background snapshotting and releases the app's
	// processes.
	Close() error
}

// ErrServerClosed reports an operation on a closed Server.
var ErrServerClosed = errors.New("serve: server closed")

// Server exposes an App over TCP.
type Server struct {
	app   App
	codec Codec
	ln    net.Listener

	handleMu sync.Mutex // serializes Handle across connections
	wg       sync.WaitGroup
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	closed   atomic.Bool
	served   atomic.Uint64

	// obs, when set, tags every request with a correlation id stamped
	// onto the app's serving address space for the handling window.
	obs atomic.Pointer[Obs]
}

// SetObserver installs the request-observability hook. Safe to call
// while serving; nil detaches.
func (s *Server) SetObserver(o *Obs) { s.obs.Store(o) }

// Listen starts serving app with the given codec on addr ("" means an
// ephemeral localhost port). The returned server is accepting; stop it
// with Close.
func Listen(app App, codec Codec, addr string) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		app:   app,
		codec: codec,
		ln:    ln,
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address ("127.0.0.1:port").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// App returns the application being served.
func (s *Server) App() App { return s.app }

// Served returns the number of requests answered so far.
func (s *Server) Served() uint64 { return s.served.Load() }

// Close stops accepting, closes every live connection, and waits for
// the per-connection goroutines to drain. It does not close the App.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return ErrServerClosed
	}
	err := s.ln.Close()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			// Closed listener or a terminal accept error either way:
			// connections already accepted keep draining.
			return
		}
		s.connMu.Lock()
		if s.closed.Load() {
			s.connMu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
	}()
	br := newReader(c)
	bw := newWriter(c)
	snap := s.app.Snapshotter()
	for {
		req, err := s.codec.ReadRequest(br)
		if err != nil {
			return // clean EOF and read errors both end the connection
		}
		// Request correlation: mint an id at codec receive and stamp it
		// onto the serving address space for the handling window, so
		// the forks and faults this request triggers carry it into the
		// trace and the exemplars. Apps without a single snapshotter
		// (Dispatcher) run their own per-lane observer instead.
		obs := s.obs.Load()
		var rid uint64
		var ridStart time.Time
		if obs != nil {
			rid = obs.Begin()
			ridStart = time.Now()
			if snap != nil {
				snap.Process().Space().SetRequest(rid)
			}
		}
		// Seqlock-style fork-coincidence probe: the epoch is odd while a
		// snapshot fork is in flight, and changes across one. Either
		// signal means this request overlapped a fork pause.
		var e1, e2 uint64
		if snap != nil {
			e1 = snap.Epoch()
		}
		s.handleMu.Lock()
		resp, herr := s.app.Handle(req)
		s.handleMu.Unlock()
		if snap != nil {
			e2 = snap.Epoch()
		}
		if rid != 0 {
			if snap != nil {
				snap.Process().Space().SetRequest(0)
			}
			obs.End(rid, 0, ridStart, herr != nil)
		}

		var flags ResponseFlags
		if e1&1 == 1 || e1 != e2 {
			flags |= FlagForkCoincident
		}
		if herr != nil {
			flags |= FlagAppError
			resp = []byte(herr.Error())
		}
		if err := s.codec.WriteResponse(bw, resp, flags); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.served.Add(1)
	}
}
