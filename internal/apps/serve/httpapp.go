package serve

import (
	"time"

	"repro/internal/apps/httpd"
	"repro/internal/kernel"
)

// HTTPConfig sizes the Apache-prefork app.
type HTTPConfig struct {
	httpd.Config
	// SnapshotEvery forks the master on this period — a periodic
	// scoreboard-dump / graceful-restart probe. Zero leaves snapshots
	// on-demand only. Master forks pause only the master (workers have
	// their own address spaces), so httpd keeps the paper's negative
	// result: mode barely matters once the pool is up.
	SnapshotEvery time.Duration
}

// HTTPApp serves the prefork httpd through the App interface. Request
// payloads are URL paths; the worker's synthesized document is the
// response payload.
type HTTPApp struct {
	srv  *httpd.Server
	snap *kernel.Snapshotter
}

// NewHTTP boots the master and its worker pool in k.
func NewHTTP(k *kernel.Kernel, cfg HTTPConfig) (*HTTPApp, error) {
	srv, err := httpd.Start(k, cfg.Config)
	if err != nil {
		return nil, err
	}
	snap, err := srv.Master().StartSnapshotter(cfg.SnapshotEvery,
		kernel.WithSnapshotMode(cfg.Mode))
	if err != nil {
		srv.Stop()
		return nil, err
	}
	return &HTTPApp{srv: srv, snap: snap}, nil
}

// Name identifies the app.
func (a *HTTPApp) Name() string { return "httpd" }

// Server exposes the underlying prefork server (startup fork times,
// recycle counts).
func (a *HTTPApp) Server() *httpd.Server { return a.srv }

// Warm is a no-op: the prefork pool is fully booted by NewHTTP.
func (a *HTTPApp) Warm() error { return nil }

// Handle serves one request on the next worker.
func (a *HTTPApp) Handle(req []byte) ([]byte, error) { return a.srv.Handle(req) }

// Snapshot forks the master once as a pure pause-time probe.
func (a *HTTPApp) Snapshot() error {
	_, err := a.snap.Snapshot()
	return err
}

// Snapshotter exposes the master's snapshot engine.
func (a *HTTPApp) Snapshotter() *kernel.Snapshotter { return a.snap }

// Close stops snapshotting, the pool, and the master.
func (a *HTTPApp) Close() error {
	a.snap.Stop()
	a.srv.Stop()
	return nil
}
