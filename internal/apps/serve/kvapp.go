package serve

import (
	"encoding/binary"
	"fmt"

	"repro/internal/apps/kvstore"
	"repro/internal/kernel"
)

// The kv request payload is op-framed:
//
//	op u8 ('S' set, 'G' get, 'D' del) | klen u32le | key | value (set)
//
// and the response payload starts with a status byte (statusOK,
// statusMiss) followed by the value on a GET hit. Protocol errors
// (unknown op, truncated frame) surface as FlagAppError responses.
const (
	opSet = 'S'
	opGet = 'G'
	opDel = 'D'

	// StatusOK is the response status for a successful SET/DEL or a
	// GET hit.
	StatusOK = 0
	// StatusMiss is the response status for a GET/DEL on an absent key.
	StatusMiss = 1
)

// EncodeSet builds a SET request payload.
func EncodeSet(key, val []byte) []byte { return encodeKV(opSet, key, val) }

// EncodeGet builds a GET request payload.
func EncodeGet(key []byte) []byte { return encodeKV(opGet, key, nil) }

// EncodeDel builds a DEL request payload.
func EncodeDel(key []byte) []byte { return encodeKV(opDel, key, nil) }

func encodeKV(op byte, key, val []byte) []byte {
	p := make([]byte, 5+len(key)+len(val))
	p[0] = op
	binary.LittleEndian.PutUint32(p[1:], uint32(len(key)))
	copy(p[5:], key)
	copy(p[5+len(key):], val)
	return p
}

// DecodeKVResponse splits a kv response payload into status and value.
func DecodeKVResponse(p []byte) (status byte, val []byte, err error) {
	if len(p) < 1 {
		return 0, nil, fmt.Errorf("serve: empty kv response")
	}
	return p[0], p[1:], nil
}

// KVConfig sizes the Redis-like app.
type KVConfig struct {
	kvstore.Config
	Keys     int // Warm preloads this many keys
	ValueLen int // bytes per preloaded value
}

// KVApp serves the Redis-like store through the App interface.
type KVApp struct {
	st  *kvstore.Store
	cfg KVConfig
}

// NewKV builds the store inside a fresh process of k. The store's
// snapshotter (periodic when cfg.SnapshotEvery is set, threshold-
// triggered via cfg.Threshold, on-demand always) is the app's.
func NewKV(k *kernel.Kernel, cfg KVConfig) (*KVApp, error) {
	st, err := kvstore.New(k, cfg.Config)
	if err != nil {
		return nil, err
	}
	return &KVApp{st: st, cfg: cfg}, nil
}

// AdoptKV wraps an already-built store (e.g. one rebuilt by
// kvstore.Adopt around a checkpoint-restored process) as a serving
// app. Warm is a no-op path for adopted apps: the data is already in
// the image.
func AdoptKV(st *kvstore.Store, cfg KVConfig) *KVApp {
	return &KVApp{st: st, cfg: cfg}
}

// Name identifies the app.
func (a *KVApp) Name() string { return "kv" }

// Store exposes the underlying kvstore for drivers that tune snapshot
// policy mid-run (e.g. disabling the threshold during calibration).
func (a *KVApp) Store() *kvstore.Store { return a.st }

// Warm preloads Keys keys of ValueLen bytes.
func (a *KVApp) Warm() error { return a.st.Populate(a.cfg.Keys, a.cfg.ValueLen) }

// Handle serves one op-framed request.
func (a *KVApp) Handle(req []byte) ([]byte, error) {
	if len(req) < 5 {
		return nil, fmt.Errorf("kv: truncated request (%d bytes)", len(req))
	}
	klen := binary.LittleEndian.Uint32(req[1:])
	if uint64(5)+uint64(klen) > uint64(len(req)) {
		return nil, fmt.Errorf("kv: key length %d exceeds frame", klen)
	}
	key := req[5 : 5+klen]
	rest := req[5+klen:]
	switch req[0] {
	case opSet:
		if _, err := a.st.Set(key, rest); err != nil {
			return nil, err
		}
		return []byte{StatusOK}, nil
	case opGet:
		val, ok, err := a.st.Get(key)
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte{StatusMiss}, nil
		}
		return append([]byte{StatusOK}, val...), nil
	case opDel:
		ok, err := a.st.Delete(key)
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte{StatusMiss}, nil
		}
		return []byte{StatusOK}, nil
	default:
		return nil, fmt.Errorf("kv: unknown op %#x", req[0])
	}
}

// HandleClone serves one op-framed request from a freshly forked
// clone of the store (the serverless invocation path): GETs read the
// clone's frozen copy-on-write memory, a consistent point-in-time
// view; SETs and DELs mutate the warm store — they are the state the
// next clone inherits.
func (a *KVApp) HandleClone(child *kernel.Process, req []byte) ([]byte, error) {
	if len(req) >= 5 && req[0] == opGet {
		klen := binary.LittleEndian.Uint32(req[1:])
		if uint64(5)+uint64(klen) > uint64(len(req)) {
			return nil, fmt.Errorf("kv: key length %d exceeds frame", klen)
		}
		val, ok, err := a.st.GetIn(child, req[5:5+klen])
		if err != nil {
			return nil, err
		}
		if !ok {
			return []byte{StatusMiss}, nil
		}
		return append([]byte{StatusOK}, val...), nil
	}
	return a.Handle(req)
}

// Snapshot takes one on-demand snapshot, discarding the dump.
func (a *KVApp) Snapshot() error { return a.st.SnapshotNow(nil) }

// Snapshotter exposes the store's snapshot engine.
func (a *KVApp) Snapshotter() *kernel.Snapshotter { return a.st.Snapshotter() }

// Close stops snapshotting and the store process.
func (a *KVApp) Close() error {
	a.st.Close()
	return nil
}
