package serve

import (
	"errors"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/kvstore"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

// TestStressServeSnapshotReclaim is the serving tier's race surface in
// one pot, meant for `go test -race`: concurrent TCP clients hammer
// the kv server while the timer snapshotter forks the serving process
// (its child serializers scanning the table from background
// goroutines), on-demand snapshots interleave, and kswapd reclaims
// under a tight frame limit. Afterwards: clean shutdown, no goroutine
// leaks, kernel invariants intact.
func TestStressServeSnapshotReclaim(t *testing.T) {
	k := kernel.New()
	k.SetSwapEnabled(true)
	defer k.SetSwapEnabled(false)
	// Arena pages (4096 for the 16 MiB arena) plus headroom for snapshot
	// children's COW pins; a hog process below drives free frames under
	// the low watermark. Not too tight: frames shared with live snapshot
	// children are unreclaimable, and a fork that cannot allocate fails.
	const limit = 6144
	k.Allocator().SetLimit(limit)
	t.Cleanup(func() { k.Allocator().SetLimit(0) })
	const lowWM, highWM = 1024, 1536
	if err := k.SetSwapWatermarks(lowWM, highWM); err != nil {
		t.Fatal(err)
	}

	cfg := KVConfig{
		Config: kvstore.Config{
			ArenaBytes:    1 << 24,
			TableCap:      1 << 12,
			Mode:          core.ForkOnDemand,
			SnapshotEvery: 25 * time.Millisecond,
		},
		Keys:     2000,
		ValueLen: 32,
	}
	app, err := NewKV(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Warm(); err != nil {
		t.Fatal(err)
	}
	srv, err := Listen(app, BinaryCodec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	// Prime the process-wide fork worker pool (it lives for the life of
	// the process) before taking the goroutine baseline, so the leak
	// check below sees only goroutines this test is responsible for.
	if err := app.Snapshot(); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	const clients = 8
	const perClient = 250
	var wg sync.WaitGroup
	errCh := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			br, bw := newReader(conn), newWriter(conn)
			cd := BinaryCodec{}
			rng := rand.New(rand.NewSource(int64(id)))
			val := make([]byte, 32)
			for i := 0; i < perClient; i++ {
				var payload []byte
				switch rng.Intn(3) {
				case 0:
					payload = EncodeSet(kvstore.Key(rng.Intn(cfg.Keys)), val)
				case 1:
					payload = EncodeGet(kvstore.Key(rng.Intn(cfg.Keys)))
				default:
					payload = EncodeDel(kvstore.Key(rng.Intn(cfg.Keys)))
				}
				if err := cd.WriteRequest(bw, payload); err != nil {
					errCh <- err
					return
				}
				if err := bw.Flush(); err != nil {
					errCh <- err
					return
				}
				if _, flags, err := cd.ReadResponse(br); err != nil {
					errCh <- err
					return
				} else if flags&FlagAppError != 0 {
					errCh <- errors.New("stress: app error response")
					return
				}
			}
		}(c)
	}
	// On-demand snapshots interleaved with the timer's, from their own
	// goroutine (SnapshotNow is single-caller like the store itself).
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
				if err := app.Snapshot(); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()
	// A memory hog keeps dirtying its own arena so free frames cross the
	// low watermark and kswapd steals pages out from under the server —
	// COW breaks on the serving path reuse sole-owner frames, so snapshot
	// churn alone never sustains pressure.
	hog := k.NewProcess()
	// Size the hog from the frames actually free after warm-up: enough
	// to dip well below the low watermark, with a few hundred frames of
	// slack left so forks and COW breaks never hit hard OOM.
	hogPages := int(int64(limit)-k.Allocator().Allocated()) - 700
	if hogPages < lowWM {
		t.Fatalf("hog of %d pages cannot reach the %d-frame watermark", hogPages, lowWM)
	}
	hogBase, err := hog.Mmap(uint64(hogPages)*addr.PageSize, rwProt, vm.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := []byte{0xA5}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			va := hogBase + addr.V((i%hogPages)*addr.PageSize)
			if err := hog.WriteAt(buf, va); err != nil {
				errCh <- err
				return
			}
			if i%64 == 63 { // stay polite on a single-CPU host
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Wait for the clients by polling served count (so a wedged client
	// surfaces its error instead of hanging wg.Wait), then stop the
	// on-demand loop and join everything.
	deadline := time.Now().Add(120 * time.Second)
	for srv.Served() < uint64(clients*perClient) && time.Now().Before(deadline) {
		select {
		case err := <-errCh:
			t.Fatal(err)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if srv.Served() < uint64(clients*perClient) {
		t.Fatalf("served %d of %d requests before deadline", srv.Served(), clients*perClient)
	}
	close(stop)
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(30 * time.Second):
		t.Fatal("stress goroutines did not finish")
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	snaps := app.Snapshotter().Snapshots()
	if snaps == 0 {
		t.Error("no snapshot forks during stress")
	}
	if errs := app.Snapshotter().Totals().ForkErrs; errs > 0 {
		t.Errorf("%d snapshot forks failed under memory pressure", errs)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	hog.Exit()
	if n := k.NumProcesses(); n != 0 {
		t.Errorf("%d processes alive after close", n)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Errorf("invariants after stress: %v", err)
	}
	rec := k.MetricsSnapshot().Reclaim
	if rec.PgStealKswapd+rec.PgStealDirect == 0 {
		t.Error("no pages reclaimed: the stress never reached memory pressure")
	}
	k.SetSwapEnabled(false) // retire kswapd before the leak check

	// Goroutine-leak check: everything the tier started must wind down.
	for end := time.Now().Add(10 * time.Second); runtime.NumGoroutine() > before; {
		if time.Now().After(end) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("stress: %d requests, %d snapshot forks", srv.Served(), snaps)
}
