package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/apps/httpd"
	"repro/internal/apps/kvstore"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/stats"
)

func testKVConfig(mode core.ForkMode) KVConfig {
	return KVConfig{
		Config: kvstore.Config{
			ArenaBytes: 1 << 24,
			TableCap:   1 << 12,
			Mode:       mode,
		},
		Keys:     500,
		ValueLen: 32,
	}
}

// client is a test-side connection speaking the given codec.
type client struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	cd Codec
}

func dial(t *testing.T, srv *Server, cd Codec) *client {
	t.Helper()
	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &client{c: c, br: newReader(c), bw: newWriter(c), cd: cd}
}

func (cl *client) roundTrip(t *testing.T, payload []byte) ([]byte, ResponseFlags) {
	t.Helper()
	if err := cl.cd.WriteRequest(cl.bw, payload); err != nil {
		t.Fatal(err)
	}
	if err := cl.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, flags, err := cl.cd.ReadResponse(cl.br)
	if err != nil {
		t.Fatal(err)
	}
	return resp, flags
}

func TestKVOverTCP(t *testing.T) {
	k := kernel.New()
	app, err := NewKV(k, testKVConfig(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Warm(); err != nil {
		t.Fatal(err)
	}
	srv, err := Listen(app, BinaryCodec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := dial(t, srv, BinaryCodec{})
	resp, flags := cl.roundTrip(t, EncodeSet([]byte("alpha"), []byte("beta")))
	if flags&FlagAppError != 0 || len(resp) != 1 || resp[0] != StatusOK {
		t.Fatalf("SET -> %v %q", flags, resp)
	}
	resp, _ = cl.roundTrip(t, EncodeGet([]byte("alpha")))
	st, val, err := DecodeKVResponse(resp)
	if err != nil || st != StatusOK || string(val) != "beta" {
		t.Fatalf("GET -> %d %q %v", st, val, err)
	}
	// A warmed key is readable over the wire.
	resp, _ = cl.roundTrip(t, EncodeGet(kvstore.Key(42)))
	if st, val, _ := DecodeKVResponse(resp); st != StatusOK || len(val) != 32 {
		t.Fatalf("GET warm key -> %d, %d bytes", st, len(val))
	}
	resp, _ = cl.roundTrip(t, EncodeDel([]byte("alpha")))
	if resp[0] != StatusOK {
		t.Fatalf("DEL -> %q", resp)
	}
	resp, _ = cl.roundTrip(t, EncodeGet([]byte("alpha")))
	if resp[0] != StatusMiss {
		t.Fatalf("GET after DEL -> %q", resp)
	}
	// Protocol errors are app-level failures, not connection teardowns.
	resp, flags = cl.roundTrip(t, []byte{0xFF, 0, 0, 0, 0})
	if flags&FlagAppError == 0 {
		t.Fatalf("bad op accepted: %q", resp)
	}
	if _, flags = cl.roundTrip(t, EncodeGet([]byte("alpha"))); flags&FlagAppError != 0 {
		t.Fatal("connection unusable after app error")
	}
	if srv.Served() < 6 {
		t.Errorf("served = %d", srv.Served())
	}
}

func TestHTTPOverTCP(t *testing.T) {
	k := kernel.New()
	app, err := NewHTTP(k, HTTPConfig{Config: httpd.Config{
		ConfigBytes: 64 * addr.PageSize,
		Workers:     2,
		Mode:        core.ForkOnDemand,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	srv, err := Listen(app, HTTPCodec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := dial(t, srv, HTTPCodec{})
	// Keep-alive: several requests on one connection.
	for i := 0; i < 3; i++ {
		resp, flags := cl.roundTrip(t, []byte("/doc-000042"))
		if flags&FlagAppError != 0 {
			t.Fatalf("request %d failed: %q", i, resp)
		}
		if len(resp) == 0 || !bytes.Contains(resp, []byte("/doc-000042")) {
			t.Fatalf("request %d: body %q does not echo path", i, resp)
		}
	}
}

// pausingApp is a stub App whose Handle blocks long enough for the
// timer-driven snapshotter to fork mid-request — the deterministic way
// to exercise the server's epoch probe (on a single CPU a fast Handle
// essentially never overlaps a fork, because the CPU-bound fork only
// starts while the server waits for the next request).
type pausingApp struct {
	p    *kernel.Process
	snap *kernel.Snapshotter
	wait time.Duration
}

func newPausingApp(t *testing.T, interval, wait time.Duration) *pausingApp {
	t.Helper()
	k := kernel.New()
	p := k.NewProcess()
	if _, err := p.Mmap(addr.PageSize*16, rwProt, vm.MapPrivate|vm.MapPopulate); err != nil {
		t.Fatal(err)
	}
	snap, err := p.StartSnapshotter(interval)
	if err != nil {
		t.Fatal(err)
	}
	return &pausingApp{p: p, snap: snap, wait: wait}
}

func (a *pausingApp) Name() string { return "pause" }
func (a *pausingApp) Warm() error  { return nil }
func (a *pausingApp) Handle(req []byte) ([]byte, error) {
	time.Sleep(a.wait)
	return req, nil
}
func (a *pausingApp) Snapshot() error {
	_, err := a.snap.Snapshot()
	return err
}
func (a *pausingApp) Snapshotter() *kernel.Snapshotter { return a.snap }
func (a *pausingApp) Close() error {
	a.snap.Stop()
	a.p.Exit()
	return nil
}

const rwProt = vm.ProtRead | vm.ProtWrite

// TestForkCoincidenceTagging pins the epoch probe: a request whose
// handling overlaps a snapshot fork comes back tagged, one that
// doesn't stays clean.
func TestForkCoincidenceTagging(t *testing.T) {
	// Snapshots every 2ms, Handle blocks 20ms: every handled request
	// spans several forks.
	app := newPausingApp(t, 2*time.Millisecond, 20*time.Millisecond)
	defer app.Close()
	srv, err := Listen(app, BinaryCodec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := dial(t, srv, BinaryCodec{})

	tagged := 0
	for i := 0; i < 10; i++ {
		resp, flags := cl.roundTrip(t, []byte("ping"))
		if string(resp) != "ping" {
			t.Fatalf("echo = %q", resp)
		}
		if flags&FlagForkCoincident != 0 {
			tagged++
		}
	}
	if tagged < 8 { // first iterations can race the timer's first fire
		t.Errorf("only %d/10 requests tagged across %d forks",
			tagged, app.Snapshotter().Snapshots())
	}
	if app.Snapshotter().Snapshots() == 0 {
		t.Fatal("timer snapshotter never forked")
	}

	// Control: no timer, no on-demand snapshots — the tag must stay
	// clear.
	quiet := newPausingApp(t, 0, 0)
	defer quiet.Close()
	qsrv, err := Listen(quiet, BinaryCodec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	defer qsrv.Close()
	qcl := dial(t, qsrv, BinaryCodec{})
	for i := 0; i < 50; i++ {
		if _, flags := qcl.roundTrip(t, []byte("q")); flags&FlagForkCoincident != 0 {
			t.Fatal("request tagged with no fork in flight")
		}
	}
}

// TestServerCloseDrains pins shutdown: Close unblocks connections
// mid-read and waits for every goroutine.
func TestServerCloseDrains(t *testing.T) {
	k := kernel.New()
	app, err := NewKV(k, testKVConfig(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	srv, err := Listen(app, BinaryCodec{}, "")
	if err != nil {
		t.Fatal(err)
	}
	// Park a few idle connections (blocked in ReadRequest).
	for i := 0; i < 4; i++ {
		dial(t, srv, BinaryCodec{})
	}
	time.Sleep(10 * time.Millisecond)
	fin := make(chan error, 1)
	go func() { fin <- srv.Close() }()
	select {
	case err := <-fin:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain idle connections")
	}
	if err := srv.Close(); err != ErrServerClosed {
		t.Errorf("second Close = %v", err)
	}
}

// TestRunLoopClosed exercises the closed-loop driver over the httpd
// app (the Tables 6–7 regime).
func TestRunLoopClosed(t *testing.T) {
	res, err := RunLoop(LoopConfig{
		New: func() (App, error) {
			return NewHTTP(kernel.New(), HTTPConfig{Config: httpd.Config{
				ConfigBytes: 64 * addr.PageSize,
				Workers:     2,
				Mode:        core.ForkOnDemand,
			}})
		},
		NewRequest: func(rng *rand.Rand) func(i int) []byte {
			return func(i int) []byte { return []byte(fmt.Sprintf("/doc-%08d", i)) }
		},
		Requests:    500,
		Seed:        1,
		Runs:        1,
		Percentiles: []float64{50, 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "httpd" || res.MeanRate <= 0 || res.Percentiles[50] <= 0 {
		t.Fatalf("implausible closed-loop result: %+v", res)
	}
	if res.Percentiles[99] < res.Percentiles[50] {
		t.Fatalf("p99 < p50: %+v", res.Percentiles)
	}
}

// TestRunLoopOpen exercises the open-loop driver over the kv app with
// threshold snapshots gated during calibration (the Tables 4–5 regime).
func TestRunLoopOpen(t *testing.T) {
	if testing.Short() {
		t.Skip("latency loop in -short mode")
	}
	cfg := testKVConfig(core.ForkOnDemand)
	cfg.Threshold = 300
	cfg.Keys = 2000
	res, err := RunLoop(LoopConfig{
		New: func() (App, error) { return NewKV(kernel.New(), cfg) },
		NewRequest: func(rng *rand.Rand) func(i int) []byte {
			val := make([]byte, 32)
			return func(i int) []byte {
				return EncodeSet(kvstore.Key(rng.Intn(cfg.Keys)), val)
			}
		},
		Requests:    3000,
		LoadRatio:   0.4,
		Seed:        1,
		Runs:        1,
		Percentiles: kvstore.LatencyPercentiles,
		Gate: func(app App, measuring bool) {
			st := app.(*KVApp).Store()
			if measuring {
				st.SnapshotThreshold = cfg.Threshold
				st.ForkTimes = stats.Sample{}
			} else {
				st.SnapshotThreshold = 0
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshots == 0 {
		t.Error("no snapshots in measured phase")
	}
	if res.ForkMean <= 0 {
		t.Errorf("fork mean = %f", res.ForkMean)
	}
	if res.Percentiles[50] <= 0 || res.Percentiles[99.99] < res.Percentiles[50] {
		t.Errorf("implausible percentiles: %+v", res.Percentiles)
	}
}
