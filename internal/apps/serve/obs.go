package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Obs is the serving tier's request-observability hook. It mints the
// request correlation ids the rest of the system propagates: the
// serving path stamps the id onto the tenant lineage's address space
// for the duration of one invocation, so the admission wait, the
// snapshot fork's stages, and every fault the clone resolves carry the
// id into the flight recorder and the latency-histogram exemplars.
// When the invocation completes, Obs emits the enclosing request span
// — the root slice the Chrome exporter threads the flow chain through.
//
// A nil *Obs is inert, and an Obs whose tracer is disabled only pays
// the id increment; ids keep being minted while tracing is off so a
// trace window opened mid-run still sees unique ids.
type Obs struct {
	trc  *trace.Tracer
	next atomic.Uint64
}

// NewObs returns an observer emitting request spans to trc (which may
// be nil or disabled; ids are minted regardless).
func NewObs(trc *trace.Tracer) *Obs { return &Obs{trc: trc} }

// Begin mints the next request correlation id. Ids are never zero —
// zero is the "outside any request" sentinel on the address space.
func (o *Obs) Begin() uint64 {
	if o == nil {
		return 0
	}
	return o.next.Add(1)
}

// End emits the request's enclosing span: tenant in Arg1, a nonzero
// Arg2 when the invocation failed.
func (o *Obs) End(req, tenantID uint64, start time.Time, failed bool) {
	if o == nil || req == 0 || !o.trc.Enabled() {
		return
	}
	var errFlag uint64
	if failed {
		errFlag = 1
	}
	o.trc.SpanReq(trace.KindRequest, trace.StageNone, trace.ActorApp, start, tenantID, errFlag, req)
}

// Minted returns how many request ids have been issued.
func (o *Obs) Minted() uint64 {
	if o == nil {
		return 0
	}
	return o.next.Load()
}
