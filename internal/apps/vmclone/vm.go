// Package vmclone implements the TriforceAFL-style experiment of the
// paper's §5.3.4 (Figure 10): a toy virtual machine whose guest RAM is
// one simulated memory mapping, booted once and then cloned by forking
// the monitor process for every fuzzing input. The guest runs a small
// bytecode "kernel" whose syscall handlers the fuzzer drives, so each
// execution does real guest-memory work through the cloned page tables.
package vmclone

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

// Guest physical memory layout (offsets into the RAM mapping).
const (
	regKernelBase  = 0x1000   // bytecode of the guest kernel
	regInodeTable  = 0x10000  // "filesystem" metadata the syscalls touch
	regHeapBase    = 0x100000 // guest heap (sys_alloc bump pointer here)
	regHeapPtrSlot = 0xFF8    // heap cursor cell
)

// CPU opcodes. Instructions are 8 bytes:
// op u8 | r1 u8 | r2 u8 | pad u8 | imm u32 (little-endian).
const (
	opHalt byte = iota
	opLoadImm
	opLoad  // r1 = mem[r2 + imm]
	opStore // mem[r2 + imm] = r1
	opAdd   // r1 += r2
	opJnz   // if r1 != 0: pc = imm
	opHash  // r1 = mix(r1) — stand-in for computation
)

const instrSize = 8

// numRegs is the guest register file size.
const numRegs = 8

// VM is a guest machine bound to a monitor process.
type VM struct {
	proc    *kernel.Process
	ramBase addr.V
	ramSize uint64
	regs    [numRegs]uint64
	steps   int
}

// Config sizes the guest.
type Config struct {
	RAMBytes uint64 // guest RAM (the paper's QEMU uses ~188 MB)
	BootFill uint64 // bytes of RAM touched at boot (working set)
}

// Boot creates the guest inside a fresh process of k, writes the guest
// kernel's syscall handlers, and initializes the inode table and boot
// working set so the cloned footprint is realistic.
func Boot(k *kernel.Kernel, cfg Config) (*VM, error) {
	proc := k.NewProcess()
	base, err := proc.Mmap(cfg.RAMBytes, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		proc.Exit()
		return nil, fmt.Errorf("vmclone: guest RAM: %w", err)
	}
	g := &VM{proc: proc, ramBase: base, ramSize: cfg.RAMBytes}

	// Install syscall handler routines.
	for sys, code := range handlers() {
		if err := g.writeCode(handlerEntry(sys), code); err != nil {
			proc.Exit()
			return nil, err
		}
	}
	// Initialize the inode table: 4096 inodes of 64 bytes.
	var ino [64]byte
	for i := 0; i < 4096; i++ {
		binary.LittleEndian.PutUint64(ino[:], uint64(i))
		binary.LittleEndian.PutUint64(ino[8:], uint64(i*4096))
		if err := g.write(regInodeTable+uint64(i)*64, ino[:]); err != nil {
			proc.Exit()
			return nil, err
		}
	}
	// Initialize the heap cursor.
	if err := g.writeU64(regHeapPtrSlot, regHeapBase); err != nil {
		proc.Exit()
		return nil, err
	}
	// Touch the boot working set so the clone carries real state.
	fill := cfg.BootFill
	if fill > cfg.RAMBytes/2 {
		fill = cfg.RAMBytes / 2
	}
	pattern := make([]byte, addr.PageSize)
	for i := range pattern {
		pattern[i] = byte(i * 13)
	}
	for off := cfg.RAMBytes / 2; off < cfg.RAMBytes/2+fill; off += addr.PageSize {
		if err := g.write(off, pattern); err != nil {
			proc.Exit()
			return nil, err
		}
	}
	return g, nil
}

// Process returns the monitor process owning the guest RAM.
func (g *VM) Process() *kernel.Process { return g.proc }

// Clone rebinds the guest to a forked monitor process (registers reset,
// RAM shared copy-on-write).
func (g *VM) Clone(proc *kernel.Process) *VM {
	return &VM{proc: proc, ramBase: g.ramBase, ramSize: g.ramSize}
}

// Steps returns instructions executed since boot/clone.
func (g *VM) Steps() int { return g.steps }

func (g *VM) write(off uint64, p []byte) error {
	return g.proc.WriteAt(p, g.ramBase+addr.V(off))
}

func (g *VM) read(off uint64, p []byte) error {
	return g.proc.ReadAt(p, g.ramBase+addr.V(off))
}

func (g *VM) writeU64(off uint64, x uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	return g.write(off, b[:])
}

func (g *VM) readU64(off uint64) (uint64, error) {
	var b [8]byte
	if err := g.read(off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// instr assembles one instruction.
func instr(op, r1, r2 byte, imm uint32) [instrSize]byte {
	var out [instrSize]byte
	out[0], out[1], out[2] = op, r1, r2
	binary.LittleEndian.PutUint32(out[4:], imm)
	return out
}

// writeCode writes a routine into guest memory.
func (g *VM) writeCode(entry uint64, code [][instrSize]byte) error {
	for i, ins := range code {
		if err := g.write(entry+uint64(i)*instrSize, ins[:]); err != nil {
			return err
		}
	}
	return nil
}

// handlerEntry returns the guest address of syscall sys's handler.
func handlerEntry(sys int) uint64 { return regKernelBase + uint64(sys)*0x100 }

// Syscall numbers the fuzzer drives.
const (
	SysStat  = iota // read an inode
	SysWrite        // update an inode's size field
	SysAlloc        // bump-allocate guest heap and scribble on it
	SysHash         // compute over a register
	NumSyscalls
)

// handlers returns the guest kernel's bytecode, one routine per
// syscall. Register conventions: r1 = argument, r2 = scratch/base,
// r0 = return value.
func handlers() map[int][][instrSize]byte {
	return map[int][][instrSize]byte{
		SysStat: { // r0 = inode[r1].size
			instr(opLoadImm, 2, 0, regInodeTable),
			instr(opAdd, 2, 1, 0), // r2 += arg (byte offset, pre-scaled)
			instr(opLoad, 0, 2, 8),
			instr(opHalt, 0, 0, 0),
		},
		SysWrite: { // inode[r1].size = r1 (scribble)
			instr(opLoadImm, 2, 0, regInodeTable),
			instr(opAdd, 2, 1, 0),
			instr(opStore, 1, 2, 8),
			instr(opHash, 1, 0, 0),
			instr(opStore, 1, 2, 16),
			instr(opHalt, 0, 0, 0),
		},
		SysAlloc: { // r0 = heap++; mem[r0] = r1
			instr(opLoadImm, 2, 0, 0),
			instr(opLoad, 0, 2, regHeapPtrSlot),
			instr(opLoadImm, 3, 0, 64),
			instr(opAdd, 3, 0, 0), // r3 = old + 64
			instr(opStore, 3, 2, regHeapPtrSlot),
			instr(opStore, 1, 0, 0), // scribble at allocated block
			instr(opHalt, 0, 0, 0),
		},
		SysHash: {
			instr(opHash, 1, 0, 0),
			instr(opHash, 1, 0, 0),
			instr(opJnz, 1, 0, 0xFFFFFFFF), // loop guard: imm sentinel halts below
			instr(opHalt, 0, 0, 0),
		},
	}
}

// maxSteps bounds one syscall's execution.
const maxSteps = 256

// Syscall executes the guest handler for sys with the given argument,
// returning r0.
func (g *VM) Syscall(sys int, arg uint64) (uint64, error) {
	if sys < 0 || sys >= NumSyscalls {
		return 0, fmt.Errorf("vmclone: bad syscall %d", sys)
	}
	g.regs = [numRegs]uint64{}
	g.regs[1] = arg
	pc := handlerEntry(sys)
	var raw [instrSize]byte
	for steps := 0; steps < maxSteps; steps++ {
		g.steps++
		if err := g.read(pc, raw[:]); err != nil {
			return 0, err
		}
		op, r1, r2 := raw[0], raw[1]%numRegs, raw[2]%numRegs
		imm := binary.LittleEndian.Uint32(raw[4:])
		switch op {
		case opHalt:
			return g.regs[0], nil
		case opLoadImm:
			g.regs[r1] = uint64(imm)
		case opLoad:
			off := (g.regs[r2] + uint64(imm)) % (g.ramSize - 8)
			x, err := g.readU64(off)
			if err != nil {
				return 0, err
			}
			g.regs[r1] = x
		case opStore:
			off := (g.regs[r2] + uint64(imm)) % (g.ramSize - 8)
			if err := g.writeU64(off, g.regs[r1]); err != nil {
				return 0, err
			}
		case opAdd:
			g.regs[r1] += g.regs[r2]
		case opJnz:
			if imm == 0xFFFFFFFF {
				return g.regs[0], nil // sentinel: treated as halt
			}
			if g.regs[r1] != 0 {
				pc = uint64(imm)
				continue
			}
		case opHash:
			x := g.regs[r1]
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			x ^= x >> 33
			g.regs[r1] = x
		default:
			return 0, fmt.Errorf("vmclone: illegal opcode %d at %#x", op, pc)
		}
		pc += instrSize
	}
	return 0, fmt.Errorf("vmclone: syscall %d exceeded %d steps", sys, maxSteps)
}
