package vmclone

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
)

func testVM(t *testing.T) (*kernel.Kernel, *VM) {
	t.Helper()
	k := kernel.New()
	g, err := Boot(k, Config{RAMBytes: 8 * addr.PTECoverage, BootFill: addr.PTECoverage})
	if err != nil {
		t.Fatal(err)
	}
	return k, g
}

func TestBootAndStat(t *testing.T) {
	k, g := testVM(t)
	defer g.Process().Exit()
	_ = k
	// inode[5].size was initialized to 5*4096 at boot.
	got, err := g.Syscall(SysStat, 5*64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5*4096 {
		t.Errorf("SysStat(5) = %d, want %d", got, 5*4096)
	}
	if g.Steps() == 0 {
		t.Error("no instructions executed")
	}
}

func TestWriteThenStat(t *testing.T) {
	_, g := testVM(t)
	defer g.Process().Exit()
	if _, err := g.Syscall(SysWrite, 7*64); err != nil {
		t.Fatal(err)
	}
	got, err := g.Syscall(SysStat, 7*64)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7*64 {
		t.Errorf("after SysWrite, size = %d, want %d", got, 7*64)
	}
}

func TestAllocBumpsHeap(t *testing.T) {
	_, g := testVM(t)
	defer g.Process().Exit()
	h0, err := g.readU64(regHeapPtrSlot)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Syscall(SysAlloc, 0xdead); err != nil {
		t.Fatal(err)
	}
	h1, _ := g.readU64(regHeapPtrSlot)
	if h1 != h0+64 {
		t.Errorf("heap %#x -> %#x, want +64", h0, h1)
	}
	// The allocated block was scribbled with the argument.
	v, _ := g.readU64(h0)
	if v != 0xdead {
		t.Errorf("alloc scribble = %#x", v)
	}
}

func TestSysHash(t *testing.T) {
	_, g := testVM(t)
	defer g.Process().Exit()
	if _, err := g.Syscall(SysHash, 12345); err != nil {
		t.Fatal(err)
	}
}

func TestBadSyscall(t *testing.T) {
	_, g := testVM(t)
	defer g.Process().Exit()
	if _, err := g.Syscall(99, 0); err == nil {
		t.Error("invalid syscall accepted")
	}
	if _, err := g.Syscall(-1, 0); err == nil {
		t.Error("negative syscall accepted")
	}
}

func TestIllegalOpcodeTrap(t *testing.T) {
	_, g := testVM(t)
	defer g.Process().Exit()
	// Corrupt a handler with an illegal opcode.
	bad := instr(0xEE, 0, 0, 0)
	if err := g.writeCode(handlerEntry(SysHash), [][instrSize]byte{bad}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Syscall(SysHash, 1); err == nil {
		t.Error("illegal opcode did not trap")
	}
}

func TestCloneIsolation(t *testing.T) {
	// The TriforceAFL property: syscalls in a cloned VM must not change
	// the master's guest state.
	k, g := testVM(t)
	defer g.Process().Exit()
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		child, err := g.Process().Fork(kernel.WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		clone := g.Clone(child)
		if _, err := clone.Syscall(SysWrite, 3*64); err != nil {
			t.Fatal(err)
		}
		got, _ := clone.Syscall(SysStat, 3*64)
		if got != 3*64 {
			t.Errorf("%v: clone write lost: %d", mode, got)
		}
		child.Exit()
		child.Wait()
		// Master still sees the boot-time value.
		got, err = g.Syscall(SysStat, 3*64)
		if err != nil {
			t.Fatal(err)
		}
		if got != 3*4096 {
			t.Errorf("%v: master corrupted by clone: %d", mode, got)
		}
	}
	_ = k
}

func TestClonerRun(t *testing.T) {
	k := kernel.New()
	c, err := NewCloner(k, Config{RAMBytes: 4 * addr.PTECoverage, BootFill: addr.PTECoverage}, core.ForkOnDemand)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunN(20, 7); err != nil {
		t.Fatal(err)
	}
	if c.Execs != 20 {
		t.Errorf("Execs = %d", c.Execs)
	}
	if c.Throughput.Total() != 20 {
		t.Errorf("throughput total = %d", c.Throughput.Total())
	}
	// Master inode table intact after 20 random executions.
	got, err := c.Master().Syscall(SysStat, 9*64)
	if err != nil || got != 9*4096 {
		t.Errorf("master inode 9 = %d, %v", got, err)
	}
	c.Close()
	if n := k.Allocator().Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestClonerODFFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison in -short mode")
	}
	k := kernel.New()
	cfg := Config{RAMBytes: 16 * addr.PTECoverage, BootFill: 4 * addr.PTECoverage}
	run := func(mode core.ForkMode) int64 {
		c, err := NewCloner(k, cfg, mode)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		start := nowNanos()
		if err := c.RunN(30, 3); err != nil {
			t.Fatal(err)
		}
		return nowNanos() - start
	}
	classic := run(core.ForkClassic)
	odf := run(core.ForkOnDemand)
	if odf >= classic {
		t.Errorf("ODF cloning (%d ns) not faster than classic (%d ns)", odf, classic)
	}
}

func nowNanos() int64 { return time.Now().UnixNano() }
