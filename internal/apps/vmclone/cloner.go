package vmclone

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// Cloner is the TriforceAFL-style driver: it boots a master VM once and
// clones it (by forking the monitor process) for every fuzzing input,
// which is decoded into a bounded sequence of guest syscalls.
type Cloner struct {
	kern   *kernel.Kernel
	master *VM
	mode   core.ForkMode

	Execs      int
	Throughput *stats.Throughput
}

// NewCloner boots the master VM.
func NewCloner(k *kernel.Kernel, cfg Config, mode core.ForkMode) (*Cloner, error) {
	master, err := Boot(k, cfg)
	if err != nil {
		return nil, err
	}
	return &Cloner{
		kern:       k,
		master:     master,
		mode:       mode,
		Throughput: stats.NewThroughput(time.Second),
	}, nil
}

// Master exposes the master VM (tests verify its isolation).
func (c *Cloner) Master() *VM { return c.master }

// Close shuts down the master.
func (c *Cloner) Close() { c.master.Process().Exit() }

// maxCallsPerInput bounds one execution. The value is chosen so a
// clone's guest-side work is of the same order as the classic fork of
// its monitor, matching the balance TriforceAFL shows in Figure 10.
const maxCallsPerInput = 1024

// RunInput clones the VM and replays the input as syscalls inside the
// clone: every 5 bytes decode to (syscall number, 4-byte argument).
func (c *Cloner) RunInput(input []byte) error {
	child, err := c.master.Process().Fork(kernel.WithMode(c.mode))
	if err != nil {
		return fmt.Errorf("vmclone: clone: %w", err)
	}
	guest := c.master.Clone(child)
	calls := 0
	for pos := 0; pos+5 <= len(input) && calls < maxCallsPerInput; pos += 5 {
		sys := int(input[pos]) % NumSyscalls
		arg := uint64(binary.LittleEndian.Uint32(input[pos+1:]))
		// SysStat/SysWrite index the 4096-entry inode table; pre-scale
		// the argument to a valid byte offset as the guest ABI expects.
		if sys == SysStat || sys == SysWrite {
			arg = (arg % 4096) * 64
		}
		if _, err := guest.Syscall(sys, arg); err != nil {
			child.Exit()
			return err
		}
		calls++
	}
	child.Exit()
	child.Wait()
	c.Execs++
	c.Throughput.Record()
	return nil
}

// RunFor replays pseudo-random inputs until the deadline, returning the
// executions performed.
func (c *Cloner) RunFor(d time.Duration, seed int64) (int, error) {
	deadline := time.Now().Add(d)
	start := c.Execs
	input := make([]byte, 5*maxCallsPerInput)
	x := uint64(seed)*2862933555777941757 + 3037000493
	for time.Now().Before(deadline) {
		for i := range input {
			x = x*2862933555777941757 + 3037000493
			input[i] = byte(x >> 56)
		}
		if err := c.RunInput(input); err != nil {
			return c.Execs - start, err
		}
	}
	return c.Execs - start, nil
}

// RunN replays n pseudo-random inputs.
func (c *Cloner) RunN(n int, seed int64) error {
	input := make([]byte, 5*maxCallsPerInput)
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := 0; i < n; i++ {
		for j := range input {
			x = x*6364136223846793005 + 1442695040888963407
			input[j] = byte(x >> 56)
		}
		if err := c.RunInput(input); err != nil {
			return err
		}
	}
	return nil
}
