// Package stats provides the small statistics toolkit the experiment
// harness uses: summary statistics, percentiles, and plain-text table
// rendering matching the paper's figures and tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates float64 observations.
type Sample struct {
	values []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddDuration appends a duration observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[0]
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	s.sort()
	return s.values[len(s.values)-1]
}

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Values returns the observations (sorted if any order-dependent
// accessor ran). The slice must not be mutated.
func (s *Sample) Values() []float64 { return s.values }

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Summary is a rendered snapshot of a sample.
type Summary struct {
	N              int
	Mean, Min, Max float64
	StdDev         float64
}

// Summarize returns the sample's summary statistics.
func (s *Sample) Summarize() Summary {
	return Summary{
		N: s.N(), Mean: s.Mean(), Min: s.Min(), Max: s.Max(), StdDev: s.StdDev(),
	}
}

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Throughput tracks events over elapsed wall-clock buckets, producing
// the executions-per-second time series of Figures 9 and 10.
type Throughput struct {
	start  time.Time
	bucket time.Duration
	counts []int
}

// NewThroughput starts a series with the given bucket width.
func NewThroughput(bucket time.Duration) *Throughput {
	return &Throughput{start: time.Now(), bucket: bucket}
}

// Record counts one event at the current time.
func (tp *Throughput) Record() { tp.RecordAt(time.Now()) }

// RecordAt counts one event at the given time.
func (tp *Throughput) RecordAt(at time.Time) {
	idx := int(at.Sub(tp.start) / tp.bucket)
	if idx < 0 {
		idx = 0
	}
	for len(tp.counts) <= idx {
		tp.counts = append(tp.counts, 0)
	}
	tp.counts[idx]++
}

// Series returns (bucket start offset seconds, events/sec) pairs.
func (tp *Throughput) Series() (secs []float64, rate []float64) {
	per := tp.bucket.Seconds()
	for i, c := range tp.counts {
		secs = append(secs, float64(i)*per)
		rate = append(rate, float64(c)/per)
	}
	return secs, rate
}

// Total returns the total number of recorded events.
func (tp *Throughput) Total() int {
	n := 0
	for _, c := range tp.counts {
		n += c
	}
	return n
}

// MeanRate returns average events/sec over the series' span.
func (tp *Throughput) MeanRate() float64 {
	if len(tp.counts) == 0 {
		return 0
	}
	return float64(tp.Total()) / (float64(len(tp.counts)) * tp.bucket.Seconds())
}
