package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Error("empty sample not all-zero")
	}
}

func TestSummaryStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if !approx(s.Mean(), 5) {
		t.Errorf("Mean = %f", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %f/%f", s.Min(), s.Max())
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !approx(s.StdDev(), want) {
		t.Errorf("StdDev = %f, want %f", s.StdDev(), want)
	}
	sum := s.Summarize()
	if sum.N != 8 || !approx(sum.Mean, 5) {
		t.Errorf("Summary = %+v", sum)
	}
}

func TestSingleValueStdDev(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.StdDev() != 0 {
		t.Error("stddev of single value non-zero")
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {90, 90.1}, {99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !approx(got, c.want) {
			t.Errorf("P%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if got := s.Percentile(-5); got != 1 {
		t.Errorf("P(-5) = %f", got)
	}
	if got := s.Percentile(200); got != 100 {
		t.Errorf("P(200) = %f", got)
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Microsecond)
	if !approx(s.Mean(), 1.5) {
		t.Errorf("duration in ms = %f", s.Mean())
	}
}

func TestQuickPercentileProperties(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		var s Sample
		var clean []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		p := float64(pRaw) / 2.55 // 0..100
		got := s.Percentile(p)
		// Percentile must be within [min, max] and monotone vs P0/P100.
		return got >= clean[0] && got <= clean[len(clean)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("size", "time (ms)", "mode")
	tb.AddRow("1GB", 6.54, "fork")
	tb.AddRow("1GB", 0.10, "on-demand-fork")
	out := tb.String()
	if !strings.Contains(out, "size") || !strings.Contains(out, "on-demand-fork") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns must align: every "fork" row starts at same offset.
	if strings.Index(lines[2], "fork") != strings.Index(out[strings.Index(out, "mode"):], "mode")-0 {
		// Loose alignment check: both data rows have 3 fields.
	}
	for _, l := range lines[2:] {
		if len(strings.Fields(l)) != 3 {
			t.Errorf("row %q has wrong field count", l)
		}
	}
}

func TestTableFloatFormats(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(0.0)
	tb.AddRow(0.00012)
	tb.AddRow(3.14159)
	tb.AddRow(12345.678)
	out := tb.String()
	for _, want := range []string{"0", "0.00012", "3.142", "12345.7"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput(100 * time.Millisecond)
	base := tp.start
	for i := 0; i < 10; i++ {
		tp.RecordAt(base.Add(time.Duration(i) * 30 * time.Millisecond))
	}
	if tp.Total() != 10 {
		t.Errorf("Total = %d", tp.Total())
	}
	secs, rate := tp.Series()
	if len(secs) != len(rate) || len(secs) == 0 {
		t.Fatalf("series lengths %d/%d", len(secs), len(rate))
	}
	// 10 events over 3 buckets of 0.1s -> mean 33.3/s.
	if m := tp.MeanRate(); m < 30 || m > 40 {
		t.Errorf("MeanRate = %f", m)
	}
	// An event before start clamps to bucket 0.
	tp.RecordAt(base.Add(-time.Second))
	if tp.Total() != 11 {
		t.Error("pre-start event lost")
	}
}

func TestThroughputEmpty(t *testing.T) {
	tp := NewThroughput(time.Second)
	if tp.MeanRate() != 0 || tp.Total() != 0 {
		t.Error("empty throughput non-zero")
	}
}
