package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func baseline() *Result {
	return &Result{
		Schema:     SchemaV1,
		Date:       "2026-01-01",
		GoMaxProcs: 8,
		Iters:      40,
		CalibNS:    4_000_000,
		Fork: []ForkResult{
			{Mode: "classic", SizeMB: 64, P50NS: 800_000, P99NS: 1_200_000, AllocsPerOp: 40},
			{Mode: "ondemand", SizeMB: 64, P50NS: 60_000, P99NS: 90_000, AllocsPerOp: 10},
		},
		Fault: FaultResult{FastPathNS: 50, COWFaultsPerSec: 2_000_000, FaultAllocsPerOp: 0},
	}
}

func TestCompareCleanRun(t *testing.T) {
	if regs := Compare(baseline(), baseline(), 0.05); len(regs) != 0 {
		t.Fatalf("identical results flagged regressions: %v", regs)
	}
}

// TestCompareSyntheticRegression is the acceptance check for the CI
// gate: a >5% fork-latency slowdown must fail, and each other guarded
// metric must trip when pushed past its threshold in the bad
// direction.
func TestCompareSyntheticRegression(t *testing.T) {
	base := baseline()

	cur := baseline()
	cur.Fork[1].P50NS *= 1.10 // ondemand p50 +10%
	regs := Compare(base, cur, 0.05)
	if len(regs) != 1 || regs[0].Metric != "fork.ondemand/64MB.p50_ns" {
		t.Fatalf("10%% p50 regression not caught: %v", regs)
	}

	cur = baseline()
	cur.Fork[0].P99NS *= 1.06
	if regs := Compare(base, cur, 0.05); len(regs) != 1 || regs[0].Metric != "fork.classic/64MB.p99_ns" {
		t.Fatalf("p99 regression not caught: %v", regs)
	}

	cur = baseline()
	cur.Fault.COWFaultsPerSec *= 0.90
	if regs := Compare(base, cur, 0.05); len(regs) != 1 || regs[0].Metric != "fault.cow_faults_per_sec" {
		t.Fatalf("faults/sec regression not caught: %v", regs)
	}

	cur = baseline()
	cur.Fork[1].AllocsPerOp = 30 // 10 -> 30 allocs/op
	if regs := Compare(base, cur, 0.05); len(regs) != 1 || !strings.HasSuffix(regs[0].Metric, "allocs_per_op") {
		t.Fatalf("allocs/op regression not caught: %v", regs)
	}

	cur = baseline()
	cur.Fork = cur.Fork[:1] // a measured cell vanished
	if regs := Compare(base, cur, 0.05); len(regs) == 0 {
		t.Fatal("missing fork cell not caught")
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	base := baseline()
	cur := baseline()
	cur.Fork[0].P50NS *= 1.04       // +4% < 5%
	cur.Fault.COWFaultsPerSec *= 0.96 // -4% < 5%
	cur.Fault.FaultAllocsPerOp = 1  // within the absolute alloc slack
	if regs := Compare(base, cur, 0.05); len(regs) != 0 {
		t.Fatalf("within-threshold drift flagged: %v", regs)
	}
}

// TestCompareCalibration checks cross-machine normalization: the same
// workload measured on a machine half as fast produces double the
// latencies and half the throughput, and must NOT be flagged when the
// calibration constant doubles with it.
func TestCompareCalibration(t *testing.T) {
	base := baseline()
	cur := baseline()
	cur.CalibNS = base.CalibNS * 2
	for i := range cur.Fork {
		cur.Fork[i].P50NS *= 2
		cur.Fork[i].P99NS *= 2
	}
	cur.Fault.FastPathNS *= 2
	cur.Fault.COWFaultsPerSec /= 2
	if regs := Compare(base, cur, 0.05); len(regs) != 0 {
		t.Fatalf("calibration failed to absorb a 2x machine-speed delta: %v", regs)
	}
	// A genuine 10% regression must still show through the 2x machine
	// slowdown.
	cur.Fork[0].P50NS *= 1.10
	if regs := Compare(base, cur, 0.05); len(regs) != 1 {
		t.Fatalf("real regression hidden by calibration: %v", regs)
	}
}

func TestResultRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	r := baseline()
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Compare(r, back, 0.0); len(regs) != 0 {
		t.Fatalf("round trip changed values: %v", regs)
	}
	if back.Schema != SchemaV1 || back.Date != r.Date || back.Iters != r.Iters {
		t.Fatalf("round trip lost header fields: %+v", back)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	r := baseline()
	r.Schema = "odf-bench/v0"
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
