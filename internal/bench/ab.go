package bench

import (
	"runtime"
	"runtime/debug"

	"repro/internal/core"
)

// RunAB executes the measurement matrix as an interleaved split-half
// experiment: every cell's rounds alternate between two accumulators A
// and B (A-first on even rounds, B-first on odd, cancelling linear
// host drift), so A and B sample the runner's noise over the same
// minutes of wall clock. Both halves run the same HEAD code, which
// makes |A-B| a measured bound on what the host can resolve: a gate
// that compares A against B at the regression threshold fails only
// when the machine cannot reproduce its own numbers — never because a
// committed baseline was measured on different hardware. Both results
// share one calibration constant (same process, same machine), so
// Compare's cross-machine normalization is the identity.
func RunAB(cfg Config) (a, b *Result, err error) {
	if cfg.Iters <= 0 {
		cfg.Iters = DefaultIters
	}
	if len(cfg.SizesMB) == 0 {
		cfg.SizesMB = []int{64, 256}
	}
	calib := calibrate()
	mk := func() *Result {
		return &Result{
			Schema:     SchemaV1,
			Date:       cfg.Date,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Iters:      cfg.Iters,
			CalibNS:    calib,
		}
	}
	a, b = mk(), mk()

	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		for _, sizeMB := range cfg.SizesMB {
			fa, fb, err := measureForkAB(mode, sizeMB, cfg.Iters)
			if err != nil {
				return nil, nil, err
			}
			a.Fork = append(a.Fork, fa)
			b.Fork = append(b.Fork, fb)
		}
	}
	if a.Fault, b.Fault, err = measureFaultAB(); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// halfOrder returns the two accumulators in this round's measurement
// order: A-first on even rounds, B-first on odd.
func halfOrder[T any](round int, a, b *T) [2]*T {
	if round%2 == 1 {
		return [2]*T{b, a}
	}
	return [2]*T{a, b}
}

// measureForkAB is measureFork with the rounds split across two
// best-of accumulators, interleaved at round granularity.
func measureForkAB(mode core.ForkMode, sizeMB, iters int) (ForkResult, ForkResult, error) {
	cell, err := newForkCell(mode, sizeMB, iters)
	if err != nil {
		return ForkResult{}, ForkResult{}, err
	}
	defer cell.close()

	fa := ForkResult{Mode: modeName(mode), SizeMB: sizeMB}
	fb := fa
	first := map[*ForkResult]bool{&fa: true, &fb: true}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for round := 0; round < forkRounds; round++ {
		for _, half := range halfOrder(round, &fa, &fb) {
			p50, p99, allocs, err := cell.round(iters)
			if err != nil {
				return ForkResult{}, ForkResult{}, err
			}
			mergeForkRound(half, first[half], p50, p99, allocs)
			first[half] = false
		}
	}
	return fa, fb, nil
}

// measureFaultAB is measureFault split-half: fast-path rounds and COW
// rounds alternate between the two accumulators.
func measureFaultAB() (FaultResult, FaultResult, error) {
	var fa, fb FaultResult

	cell, err := newFastPathCell()
	if err != nil {
		return fa, fb, err
	}
	first := map[*FaultResult]bool{&fa: true, &fb: true}
	err = func() error {
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		for round := 0; round < fastPathRounds; round++ {
			for _, half := range halfOrder(round, &fa, &fb) {
				ns, allocs, err := cell.round()
				if err != nil {
					return err
				}
				if first[half] || ns < half.FastPathNS {
					half.FastPathNS = ns
				}
				if first[half] || allocs < half.FaultAllocsPerOp {
					half.FaultAllocsPerOp = allocs
				}
				first[half] = false
			}
		}
		return nil
	}()
	cell.close()
	if err != nil {
		return fa, fb, err
	}

	// COW throughput is a best-of starting from zero; no seed needed.
	for round := 0; round < cowRounds; round++ {
		for _, half := range halfOrder(round, &fa, &fb) {
			rate, err := cowRound()
			if err != nil {
				return fa, fb, err
			}
			if rate > half.COWFaultsPerSec {
				half.COWFaultsPerSec = rate
			}
		}
	}
	return fa, fb, nil
}
