// Package bench measures the repository's hot-path performance and
// records it in a stable JSON schema (`odf-bench/v1`), giving the repo
// the benchmark trajectory ROADMAP item 3 asks for: curated
// BENCH_<date>.json baselines are committed, `make bench-json`
// reproduces them, and CI compares fresh numbers against the newest
// baseline with a regression threshold.
//
// Raw nanosecond latencies are not comparable across machines, so each
// result embeds a calibration constant: the time of a fixed pure-CPU
// integer loop on the measuring machine. The comparator normalizes
// latency-like metrics by the ratio of calibration constants before
// applying the threshold, which keeps the CI gate meaningful on
// runners faster or slower than the machine that produced the
// baseline. Alloc counts are machine-independent and compared raw.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// SchemaV1 identifies the current result schema.
const SchemaV1 = "odf-bench/v1"

// Result is one benchmark run: the full hot-path surface measured on
// one machine at one commit.
type Result struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"` // YYYY-MM-DD of the run
	GoMaxProcs int    `json:"gomaxprocs"`
	Iters      int    `json:"iters"`
	// CalibNS is the duration of calibLoop in nanoseconds on the
	// measuring machine — the machine-speed yardstick used to
	// normalize latencies across machines.
	CalibNS float64 `json:"calib_ns"`

	Fork  []ForkResult `json:"fork"`
	Fault FaultResult  `json:"fault"`
}

// ForkResult is the fork-latency distribution for one engine at one
// mapping size.
type ForkResult struct {
	Mode        string  `json:"mode"` // "classic" | "ondemand"
	SizeMB      int     `json:"size_mb"`
	P50NS       float64 `json:"p50_ns"`
	P99NS       float64 `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// FaultResult captures the fault-side hot paths: the post-split write
// fast path and the COW fault throughput of a freshly forked space.
type FaultResult struct {
	FastPathNS      float64 `json:"fastpath_ns"`
	COWFaultsPerSec float64 `json:"cow_faults_per_sec"`
	FaultAllocsPerOp float64 `json:"fault_allocs_per_op"`
}

// forkKey indexes fork results for comparison.
func (f ForkResult) forkKey() string { return fmt.Sprintf("%s/%dMB", f.Mode, f.SizeMB) }

// Save writes r as indented JSON to path, with fork entries sorted for
// a stable diff.
func (r *Result) Save(path string) error {
	sort.Slice(r.Fork, func(i, j int) bool {
		if r.Fork[i].Mode != r.Fork[j].Mode {
			return r.Fork[i].Mode < r.Fork[j].Mode
		}
		return r.Fork[i].SizeMB < r.Fork[j].SizeMB
	})
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a Result from path and validates its schema tag.
func Load(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != SchemaV1 {
		return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, SchemaV1)
	}
	return &r, nil
}
