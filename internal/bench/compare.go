package bench

import "fmt"

// Regression is one metric that moved past the threshold in the bad
// direction, with values already normalized to the baseline machine's
// speed.
type Regression struct {
	Metric string  // e.g. "fork.ondemand/256MB.p50_ns"
	Base   float64 // baseline value
	Cur    float64 // current value, calibration-normalized
	Limit  float64 // the threshold the current value crossed
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.1f -> %.1f (limit %.1f)", r.Metric, r.Base, r.Cur, r.Limit)
}

// allocSlack is the absolute allocs/op slack added on top of the
// relative threshold. Pool-warm paths sit at or near zero allocs/op,
// where a pure ratio test would flag 0 -> 0.5 measurement noise; a
// genuine regression (a new per-op allocation) moves the count by at
// least 1 per op.
const allocSlack = 2.0

// Compare checks cur against base with the given relative threshold
// (0.05 = 5%) and returns every regression found. Latency metrics
// (fork p50/p99, fault fast path) regress when the normalized current
// value exceeds base*(1+threshold); throughput (COW faults/sec)
// regresses when it falls below base*(1-threshold); allocs/op regress
// when they exceed base*(1+threshold)+allocSlack. Fork entries are
// matched by mode and size; an entry present in base but missing from
// cur is itself a regression (the gate must not pass by measuring
// less).
func Compare(base, cur *Result, threshold float64) []Regression {
	// speed is how much slower the current machine is than the
	// baseline machine; >1 means slower. Latencies are divided by it,
	// throughput multiplied, before thresholding.
	speed := 1.0
	if base.CalibNS > 0 && cur.CalibNS > 0 {
		speed = cur.CalibNS / base.CalibNS
	}

	var regs []Regression
	slower := func(metric string, b, c float64) {
		c /= speed
		if limit := b * (1 + threshold); c > limit {
			regs = append(regs, Regression{Metric: metric, Base: b, Cur: c, Limit: limit})
		}
	}
	allocs := func(metric string, b, c float64) {
		if limit := b*(1+threshold) + allocSlack; c > limit {
			regs = append(regs, Regression{Metric: metric, Base: b, Cur: c, Limit: limit})
		}
	}

	curFork := make(map[string]ForkResult, len(cur.Fork))
	for _, f := range cur.Fork {
		curFork[f.forkKey()] = f
	}
	for _, b := range base.Fork {
		c, ok := curFork[b.forkKey()]
		if !ok {
			regs = append(regs, Regression{Metric: "fork." + b.forkKey() + ".missing", Base: 1, Cur: 0, Limit: 1})
			continue
		}
		slower("fork."+b.forkKey()+".p50_ns", b.P50NS, c.P50NS)
		slower("fork."+b.forkKey()+".p99_ns", b.P99NS, c.P99NS)
		allocs("fork."+b.forkKey()+".allocs_per_op", b.AllocsPerOp, c.AllocsPerOp)
	}

	slower("fault.fastpath_ns", base.Fault.FastPathNS, cur.Fault.FastPathNS)
	allocs("fault.allocs_per_op", base.Fault.FaultAllocsPerOp, cur.Fault.FaultAllocsPerOp)
	if b, c := base.Fault.COWFaultsPerSec, cur.Fault.COWFaultsPerSec*speed; b > 0 {
		if limit := b * (1 - threshold); c < limit {
			regs = append(regs, Regression{Metric: "fault.cow_faults_per_sec", Base: b, Cur: c, Limit: limit})
		}
	}
	return regs
}
