package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/vm"
)

// Config tunes a benchmark run.
type Config struct {
	// Iters is the number of measured fork invocations per (mode,
	// size) cell. The CI gate uses a small count; curated baselines
	// use the default.
	Iters int
	// SizesMB are the mapping sizes to fork. Defaults to 64 and 256.
	SizesMB []int
	// Date stamps the result (YYYY-MM-DD); the caller supplies it so
	// the runner stays deterministic apart from the clock reads that
	// do the measuring.
	Date string
}

// DefaultIters is the measured fork count per round. At 120 samples
// the p99 index (118) sits below the maximum, so the reported tail is
// a real quantile rather than the single worst sample; the gate and
// the curated baselines use the same count so both estimate the same
// statistic.
const DefaultIters = 120

// Every cell is measured as a best-of-rounds: scheduler preemption and
// timer jitter only ever make a round slower, so the minimum across
// rounds is the stable estimate of the code's cost, and a regression
// has to push the best round past the gate threshold to slip through.
const (
	warmupForks    = 3
	forkRounds     = 3
	fastPathOps    = 100_000
	fastPathRounds = 3
	cowRounds      = 8
	cowSizeMB      = 64
	calibRounds    = 3
	calibLoopIter  = 1 << 21
)

// Run executes the full measurement matrix and returns the result.
// GC is disabled during timed sections so pool-warm steady state is
// what gets measured (a GC mid-loop clears sync.Pool victim caches and
// would charge collection pauses to whichever fork it interrupts).
func Run(cfg Config) (*Result, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = DefaultIters
	}
	if len(cfg.SizesMB) == 0 {
		cfg.SizesMB = []int{64, 256}
	}
	r := &Result{
		Schema:     SchemaV1,
		Date:       cfg.Date,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Iters:      cfg.Iters,
		CalibNS:    calibrate(),
	}
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		for _, sizeMB := range cfg.SizesMB {
			fr, err := measureFork(mode, sizeMB, cfg.Iters)
			if err != nil {
				return nil, err
			}
			r.Fork = append(r.Fork, fr)
		}
	}
	var err error
	if r.Fault, err = measureFault(); err != nil {
		return nil, err
	}
	return r, nil
}

// calibrate times a fixed integer-mixing loop and returns the best of
// a few rounds in nanoseconds — the machine-speed yardstick embedded
// in every result.
func calibrate() float64 {
	best := time.Duration(1<<63 - 1)
	for round := 0; round < calibRounds; round++ {
		x := uint64(0x9e3779b97f4a7c15)
		start := time.Now()
		for i := 0; i < calibLoopIter; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		if d := time.Since(start); d < best && x != 0 {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

// newParent builds a standalone address space with a populated
// anonymous mapping of sizeMB. Populated-but-unwritten pages model the
// common fork workload shape: the page tables are fully built (that is
// what fork copies or shares) while the data pages hold no bytes yet.
func newParent(sizeMB int) (*core.AddressSpace, error) {
	alloc := phys.NewAllocator(nil)
	as := core.NewAddressSpace(alloc, nil)
	size := uint64(sizeMB) << 20
	if _, err := as.Mmap(0, size, vm.ProtRead|vm.ProtWrite, vm.MapPopulate, nil, 0); err != nil {
		return nil, fmt.Errorf("bench: mmap %d MB: %w", sizeMB, err)
	}
	return as, nil
}

func modeName(mode core.ForkMode) string {
	if mode == core.ForkOnDemand {
		return "ondemand"
	}
	return "classic"
}

// forkCell is one warm (mode, size) measurement cell: a populated
// parent whose fork+recycle cycle can be timed one round at a time, so
// callers choose the round schedule (sequential best-of for Run,
// interleaved A/B for RunAB).
type forkCell struct {
	parent *core.AddressSpace
	mode   core.ForkMode
	sizeMB int
	lats   []time.Duration
}

func newForkCell(mode core.ForkMode, sizeMB, iters int) (*forkCell, error) {
	parent, err := newParent(sizeMB)
	if err != nil {
		return nil, err
	}
	c := &forkCell{parent: parent, mode: mode, sizeMB: sizeMB, lats: make([]time.Duration, 0, iters)}
	for i := 0; i < warmupForks; i++ {
		if _, err := c.forkOnce(); err != nil {
			c.close()
			return nil, err
		}
	}
	return c, nil
}

func (c *forkCell) close() { c.parent.Teardown() }

func (c *forkCell) forkOnce() (time.Duration, error) {
	start := time.Now()
	child, err := core.ForkWithOptions(c.parent, c.mode, core.ForkOptions{})
	lat := time.Since(start)
	if err != nil {
		return 0, fmt.Errorf("bench: %s fork of %d MB: %w", modeName(c.mode), c.sizeMB, err)
	}
	// Recycle, not Teardown: the steady-state fork loop a server
	// pays runs pool-warm, which is what the allocs/op cell gates.
	child.Recycle()
	return lat, nil
}

// round measures one round of iters forks and returns its p50/p99
// latencies and allocs/op. The caller is expected to have GC disabled.
func (c *forkCell) round(iters int) (p50, p99, allocs float64, err error) {
	c.lats = c.lats[:0]
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		lat, ferr := c.forkOnce()
		if ferr != nil {
			return 0, 0, 0, ferr
		}
		c.lats = append(c.lats, lat)
	}
	runtime.ReadMemStats(&after)
	sort.Slice(c.lats, func(i, j int) bool { return c.lats[i] < c.lats[j] })
	p50 = float64(c.lats[iters/2].Nanoseconds())
	p99 = float64(c.lats[min(iters-1, iters*99/100)].Nanoseconds())
	allocs = float64(after.Mallocs-before.Mallocs) / float64(iters)
	return p50, p99, allocs, nil
}

// mergeRound folds one round's figures into out best-of.
func mergeForkRound(out *ForkResult, first bool, p50, p99, allocs float64) {
	if first || p50 < out.P50NS {
		out.P50NS = p50
	}
	if first || p99 < out.P99NS {
		out.P99NS = p99
	}
	if first || allocs < out.AllocsPerOp {
		out.AllocsPerOp = allocs
	}
}

// measureFork times iters fork+teardown cycles of a sizeMB space and
// reports the latency distribution of the fork call alone plus the Go
// heap allocations of the full cycle (the steady-state cost a server
// forking in a loop pays).
func measureFork(mode core.ForkMode, sizeMB, iters int) (ForkResult, error) {
	cell, err := newForkCell(mode, sizeMB, iters)
	if err != nil {
		return ForkResult{}, err
	}
	defer cell.close()

	out := ForkResult{Mode: modeName(mode), SizeMB: sizeMB}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for round := 0; round < forkRounds; round++ {
		p50, p99, allocs, err := cell.round(iters)
		if err != nil {
			return ForkResult{}, err
		}
		mergeForkRound(&out, round == 0, p50, p99, allocs)
	}
	return out, nil
}

// fastPathCell is the warm write-fast-path cell: a parent that already
// privatized one page, ready to be hammered one round at a time.
type fastPathCell struct {
	parent *core.AddressSpace
	child  *core.AddressSpace
	base   addr.V
}

func newFastPathCell() (*fastPathCell, error) {
	parent, err := newParent(cowSizeMB)
	if err != nil {
		return nil, err
	}
	child, err := core.ForkWithOptions(parent, core.ForkOnDemand, core.ForkOptions{})
	if err != nil {
		parent.Teardown()
		return nil, fmt.Errorf("bench: fault-path fork: %w", err)
	}
	base := parent.VMAs()[0].Range.Start
	if err := parent.StoreByte(base, 1); err != nil {
		child.Recycle()
		parent.Teardown()
		return nil, err
	}
	return &fastPathCell{parent: parent, child: child, base: base}, nil
}

func (c *fastPathCell) close() {
	c.child.Recycle()
	c.parent.Recycle()
}

// round hammers the privatized byte fastPathOps times and returns
// ns/op and allocs/op. The caller is expected to have GC disabled.
func (c *fastPathCell) round() (ns, allocs float64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < fastPathOps; i++ {
		if err = c.parent.StoreByte(c.base, byte(i)); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / fastPathOps,
		float64(after.Mallocs-before.Mallocs) / fastPathOps, nil
}

// cowRound forks a fresh on-demand child of a cowSizeMB parent and
// writes one byte to every 4 KiB page, returning the fault rate. The
// first write per 2 MiB region splits the shared leaf table; every
// write pays a data-page COW.
func cowRound() (float64, error) {
	parent, err := newParent(cowSizeMB)
	if err != nil {
		return 0, err
	}
	child, err := core.ForkWithOptions(parent, core.ForkOnDemand, core.ForkOptions{})
	if err != nil {
		parent.Teardown()
		return 0, fmt.Errorf("bench: cow fork: %w", err)
	}
	pages := (cowSizeMB << 20) / addr.PageSize
	base := parent.VMAs()[0].Range.Start
	var elapsed time.Duration
	func() {
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		runtime.GC()
		start := time.Now()
		for p := 0; p < pages; p++ {
			if err = parent.StoreByte(base+addr.V(p*addr.PageSize), 1); err != nil {
				return
			}
		}
		elapsed = time.Since(start)
	}()
	child.Recycle()
	parent.Recycle()
	if err != nil {
		return 0, err
	}
	return float64(pages) / elapsed.Seconds(), nil
}

// measureFault measures the two fault-side paths: the write fast path
// on an already-privatized page (dominated by the TLB lookup) and COW
// fault throughput — first writes marching through a freshly
// on-demand-forked space, each paying table-split or page-copy work.
func measureFault() (FaultResult, error) {
	var out FaultResult

	// Fast path: fork once, take the first write fault, then hammer
	// the same byte. Steady state is a pool-warm TLB hit.
	cell, err := newFastPathCell()
	if err != nil {
		return out, err
	}
	err = func() error {
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		for round := 0; round < fastPathRounds; round++ {
			ns, allocs, err := cell.round()
			if err != nil {
				return err
			}
			if round == 0 || ns < out.FastPathNS {
				out.FastPathNS = ns
			}
			if round == 0 || allocs < out.FaultAllocsPerOp {
				out.FaultAllocsPerOp = allocs
			}
		}
		return nil
	}()
	cell.close()
	if err != nil {
		return out, err
	}

	// COW throughput: best round wins (later rounds are pool-warm).
	best := 0.0
	for round := 0; round < cowRounds; round++ {
		rate, err := cowRound()
		if err != nil {
			return out, err
		}
		if rate > best {
			best = rate
		}
	}
	out.COWFaultsPerSec = best
	return out, nil
}
