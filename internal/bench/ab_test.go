package bench

import "testing"

// TestRunABShape runs a miniature split-half measurement and checks
// the two halves are structurally comparable: same cells, one shared
// calibration constant (so Compare's normalization is the identity),
// and every metric populated in both halves.
func TestRunABShape(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement test")
	}
	a, b, err := RunAB(Config{Iters: 4, SizesMB: []int{1}, Date: "2026-01-01"})
	if err != nil {
		t.Fatal(err)
	}
	if a.CalibNS != b.CalibNS || a.CalibNS <= 0 {
		t.Fatalf("halves have different or empty calibration: %v vs %v", a.CalibNS, b.CalibNS)
	}
	if len(a.Fork) != 2 || len(b.Fork) != 2 {
		t.Fatalf("fork cells: %d vs %d, want 2 each", len(a.Fork), len(b.Fork))
	}
	for i := range a.Fork {
		if a.Fork[i].forkKey() != b.Fork[i].forkKey() {
			t.Fatalf("cell %d keys differ: %s vs %s", i, a.Fork[i].forkKey(), b.Fork[i].forkKey())
		}
		for _, h := range []*Result{a, b} {
			f := h.Fork[i]
			if f.P50NS <= 0 || f.P99NS <= 0 {
				t.Fatalf("unpopulated cell %s: %+v", f.forkKey(), f)
			}
		}
	}
	for _, h := range []*Result{a, b} {
		if h.Fault.FastPathNS <= 0 || h.Fault.COWFaultsPerSec <= 0 {
			t.Fatalf("unpopulated fault half: %+v", h.Fault)
		}
	}
	// At a wide-open threshold the halves always agree: the gate logic
	// itself, not the machine, is what this asserts.
	if regs := Compare(a, b, 100); len(regs) != 0 {
		t.Fatalf("identical-code halves flagged at 100x threshold: %v", regs)
	}
}
