package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apps/fuzz"
	"repro/internal/apps/httpd"
	"repro/internal/apps/kvstore"
	"repro/internal/apps/serve"
	"repro/internal/apps/sqlike"
	"repro/internal/apps/vmclone"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// AppScale sizes the application experiments. The paper's setups
// (≈1 GB databases, 188 MB VM) are reachable by raising these; the
// defaults keep a full harness run in the minutes range.
type AppScale struct {
	SQLiteItems int    // rows in the initial sqlike database
	ArenaBytes  uint64 // sqlike/kvstore arena size
	KVKeys      int    // preloaded keys in the Redis-like store
	KVValueLen  int
	VMRAMBytes  uint64 // guest RAM for the TriforceAFL experiment
	FuzzSeconds int    // wall-clock seconds per fuzzing campaign
	Requests    int    // kvstore/httpd request counts
}

// DefaultScale is the standard harness configuration.
func DefaultScale() AppScale {
	return AppScale{
		SQLiteItems: 60000,
		ArenaBytes:  256 * MiB,
		KVKeys:      40000,
		KVValueLen:  64,
		VMRAMBytes:  188 * MiB,
		FuzzSeconds: 10,
		Requests:    60000,
	}
}

// Fig9Result is a fuzzing-campaign outcome for one engine.
type Fig9Result struct {
	Mode     core.ForkMode
	Execs    int
	MeanRate float64
	Secs     []float64
	Rate     []float64
	Edges    int
}

// RunFig9 runs the AFL-on-SQLite campaign under both engines.
func RunFig9(scale AppScale) ([]Fig9Result, string, error) {
	var out []Fig9Result
	tb := stats.NewTable("engine", "executions", "mean execs/s", "edges", "corpus")
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		k := kernel.New()
		f, err := fuzz.NewFuzzer(k, fuzz.Config{
			DB: sqlike.Config{
				ArenaBytes: scale.ArenaBytes,
				MaxItems:   uint64(scale.SQLiteItems) * 2,
				MaxTags:    uint64(scale.SQLiteItems)/50 + 16,
			},
			Items:    scale.SQLiteItems,
			NameLen:  24,
			TagEvery: 50,
			Mode:     mode,
			Seed:     1,
		})
		if err != nil {
			return nil, "", err
		}
		if _, err := f.RunFor(time.Duration(scale.FuzzSeconds) * time.Second); err != nil {
			f.Close()
			return nil, "", err
		}
		secs, rate := f.Throughput.Series()
		out = append(out, Fig9Result{
			Mode:     mode,
			Execs:    f.Execs,
			MeanRate: f.Throughput.MeanRate(),
			Secs:     secs,
			Rate:     rate,
			Edges:    f.GlobalEdges(),
		})
		tb.AddRow(mode.String(), f.Execs, f.Throughput.MeanRate(), f.GlobalEdges(), f.CorpusSize())
		f.Close()
	}
	text := header("Figure 9: AFL execution throughput on the sqlike engine") + tb.String() +
		seriesText(out)
	return out, text, nil
}

func seriesText(rs []Fig9Result) string {
	s := "\nthroughput series (execs/s per second of campaign):\n"
	for _, r := range rs {
		s += fmt.Sprintf("  %-15s", r.Mode.String())
		for _, v := range r.Rate {
			s += fmt.Sprintf(" %6.0f", v)
		}
		s += "\n"
	}
	return s
}

// RunTab2 reproduces the sequential test-phase breakdown.
func RunTab2(scale AppScale) (sqlike.PhaseBreakdown, string, error) {
	k := kernel.New()
	res, err := sqlike.MeasureSequential(k, suiteConfig(scale, core.ForkClassic, 1))
	if err != nil {
		return sqlike.PhaseBreakdown{}, "", err
	}
	tb := stats.NewTable("phase", "avg. time (ms)", "relative")
	total := res.Total()
	tb.AddRow("Initialization", res.InitMS, pct(res.InitMS, total))
	tb.AddRow("Forking", res.ForkMS, pct(res.ForkMS, total))
	tb.AddRow("Testing", res.TestMS, pct(res.TestMS, total))
	tb.AddRow("Total", total, "100%")
	return res, header("Table 2: sequential unit-test phase breakdown") + tb.String(), nil
}

// RunTab3 compares fork-based unit testing under both engines.
func RunTab3(scale AppScale, reps int) ([]sqlike.ForkedSuiteResult, string, error) {
	k := kernel.New()
	var out []sqlike.ForkedSuiteResult
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		res, err := sqlike.MeasureForked(k, suiteConfig(scale, mode, reps))
		if err != nil {
			return nil, "", err
		}
		out = append(out, res)
	}
	tb := stats.NewTable("phase", "fork (ms)", "on-demand-fork (ms)")
	tb.AddRow("Forking", out[0].ForkMS, out[1].ForkMS)
	tb.AddRow("Testing", out[0].TestMS, out[1].TestMS)
	tb.AddRow("Total", out[0].Total(), out[1].Total())
	return out, header("Table 3: fork-based unit test time by engine") + tb.String(), nil
}

func suiteConfig(scale AppScale, mode core.ForkMode, reps int) sqlike.SuiteConfig {
	return sqlike.SuiteConfig{
		DB: sqlike.Config{
			ArenaBytes: scale.ArenaBytes,
			MaxItems:   uint64(scale.SQLiteItems) * 2,
			MaxTags:    uint64(scale.SQLiteItems)/50 + 16,
		},
		Items:    scale.SQLiteItems,
		NameLen:  24,
		TagEvery: 50,
		Mode:     mode,
		Reps:     reps,
	}
}

func pct(part, total float64) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.2f%%", 100*part/total)
}

// RunTab45 runs the Redis-like latency benchmark under both engines,
// producing Table 4 (request percentiles) and Table 5 (fork times).
// The workload drives the store through the unified serve.App door —
// the same app (and wire encoding) the TCP tier and SLO harness use.
func RunTab45(scale AppScale) ([]kvstore.LatencyResult, string, error) {
	const threshold = 10000 // the Redis save-threshold default the paper uses
	var out []kvstore.LatencyResult
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		mode := mode
		res, err := serve.RunLoop(serve.LoopConfig{
			New: func() (serve.App, error) {
				return serve.NewKV(kernel.New(), serve.KVConfig{
					Config: kvstore.Config{
						ArenaBytes:      scale.ArenaBytes,
						TableCap:        tableCapFor(scale.KVKeys),
						Mode:            mode,
						Threshold:       threshold,
						SnapshotIODelay: time.Millisecond,
					},
					Keys:     scale.KVKeys,
					ValueLen: scale.KVValueLen,
				})
			},
			NewRequest: func(rng *rand.Rand) func(i int) []byte {
				val := make([]byte, scale.KVValueLen)
				return func(i int) []byte {
					return serve.EncodeSet(kvstore.Key(rng.Intn(scale.KVKeys)), val)
				}
			},
			Requests: scale.Requests,
			// Calibration runs without snapshot pressure; post-snapshot
			// copy-on-write roughly doubles service times, so the offered
			// load is kept well below raw capacity to avoid saturating
			// both engines (the paper's memtier run is likewise below
			// Redis's saturation point).
			LoadRatio:   0.2,
			Seed:        7,
			Runs:        5,
			Percentiles: kvstore.LatencyPercentiles,
			// The gate holds threshold-triggered snapshots off while raw
			// capacity is measured.
			Gate: func(app serve.App, measuring bool) {
				st := app.(*serve.KVApp).Store()
				if measuring {
					st.SnapshotThreshold = threshold
				} else {
					st.SnapshotThreshold = 0
				}
			},
		})
		if err != nil {
			return nil, "", err
		}
		out = append(out, kvstore.LatencyResult{
			Mode:        mode,
			Percentiles: res.Percentiles,
			ForkMean:    res.ForkMean,
			ForkStdDev:  res.ForkStdDev,
			Snapshots:   res.Snapshots,
			MeanRate:    res.MeanRate,
		})
	}

	t4 := stats.NewTable("percentile", "fork (ms)", "on-demand-fork (ms)", "reduction")
	for _, p := range kvstore.LatencyPercentiles {
		a, b := out[0].Percentiles[p], out[1].Percentiles[p]
		t4.AddRow(fmt.Sprintf(">=%.4g%%", p), a, b, pct(a-b, a))
	}
	t5 := stats.NewTable("type", "fork", "on-demand-fork", "reduction")
	t5.AddRow("Mean (ms)", out[0].ForkMean, out[1].ForkMean, pct(out[0].ForkMean-out[1].ForkMean, out[0].ForkMean))
	t5.AddRow("Std. Dev. (ms)", out[0].ForkStdDev, out[1].ForkStdDev,
		pct(out[0].ForkStdDev-out[1].ForkStdDev, out[0].ForkStdDev))
	text := header("Table 4: Redis-like request latency percentiles") + t4.String() + "\n" +
		header("Table 5: Redis-like snapshot fork time") + t5.String() +
		fmt.Sprintf("\nsnapshots taken: fork=%d odf=%d\n", out[0].Snapshots, out[1].Snapshots)
	return out, text, nil
}

func tableCapFor(keys int) uint64 {
	c := uint64(1)
	for c < uint64(keys)*2 {
		c <<= 1
	}
	return c
}

// RunFig10 runs the VM-cloning campaign under both engines.
func RunFig10(scale AppScale) ([]Fig9Result, string, error) {
	var out []Fig9Result
	tb := stats.NewTable("engine", "executions", "mean execs/s")
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		k := kernel.New()
		c, err := vmclone.NewCloner(k, vmclone.Config{
			RAMBytes: scale.VMRAMBytes,
			BootFill: scale.VMRAMBytes / 4,
		}, mode)
		if err != nil {
			return nil, "", err
		}
		if _, err := c.RunFor(time.Duration(scale.FuzzSeconds)*time.Second, 3); err != nil {
			c.Close()
			return nil, "", err
		}
		secs, rate := c.Throughput.Series()
		out = append(out, Fig9Result{
			Mode: mode, Execs: c.Execs, MeanRate: c.Throughput.MeanRate(),
			Secs: secs, Rate: rate,
		})
		tb.AddRow(mode.String(), c.Execs, c.Throughput.MeanRate())
		c.Close()
	}
	text := header("Figure 10: TriforceAFL-style VM cloning throughput") + tb.String() + seriesText(out)
	return out, text, nil
}

// RunTab67 runs the Apache-prefork benchmark under both engines,
// driving the worker pool through the serve.App door in the httpd
// bench's closed-loop (wrk-style) regime.
func RunTab67(scale AppScale) ([]httpd.BenchResult, string, error) {
	var out []httpd.BenchResult
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		mode := mode
		var startupMS float64
		res, err := serve.RunLoop(serve.LoopConfig{
			New: func() (serve.App, error) {
				app, err := serve.NewHTTP(kernel.New(), serve.HTTPConfig{Config: httpd.Config{
					ConfigBytes: 7 * MiB,
					Workers:     8,
					Mode:        mode,
				}})
				if err != nil {
					return nil, err
				}
				s := app.Server()
				startupMS = s.StartupForkTimes.Mean() * float64(s.StartupForkTimes.N())
				return app, nil
			},
			NewRequest: func(rng *rand.Rand) func(i int) []byte {
				req := make([]byte, 64)
				return func(i int) []byte {
					binary.LittleEndian.PutUint64(req, uint64(i))
					return req
				}
			},
			Requests:    scale.Requests / 4,
			Runs:        1, // the paper's wrk pass is a single run
			Percentiles: httpd.BenchPercentiles,
		})
		if err != nil {
			return nil, "", err
		}
		br := httpd.BenchResult{
			Mode:        mode,
			MeanUS:      res.MeanMS * 1e3,
			MaxUS:       res.MaxMS * 1e3,
			Percentiles: make(map[float64]float64, len(res.Percentiles)),
			StartupMS:   startupMS,
		}
		for p, v := range res.Percentiles {
			br.Percentiles[p] = v * 1e3
		}
		out = append(out, br)
	}
	t6 := stats.NewTable("", "fork", "on-demand-fork", "difference")
	t6.AddRow("Mean (us)", out[0].MeanUS, out[1].MeanUS, pct(out[1].MeanUS-out[0].MeanUS, out[0].MeanUS))
	t6.AddRow("Max (us)", out[0].MaxUS, out[1].MaxUS, pct(out[1].MaxUS-out[0].MaxUS, out[0].MaxUS))
	t7 := stats.NewTable("percentile", "fork (us)", "on-demand-fork (us)")
	for _, p := range httpd.BenchPercentiles {
		t7.AddRow(fmt.Sprintf(">=%.0f%%", p), out[0].Percentiles[p], out[1].Percentiles[p])
	}
	text := header("Table 6: Apache-prefork response latency") + t6.String() + "\n" +
		header("Table 7: Apache-prefork latency distribution") + t7.String() +
		fmt.Sprintf("\nstartup prefork time: fork=%.3fms odf=%.3fms\n", out[0].StartupMS, out[1].StartupMS)
	return out, text, nil
}
