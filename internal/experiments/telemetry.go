package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Every experiment artifact ends with the same compact telemetry
// block: the delta of the system-wide metrics over the run, so each
// figure's table is accompanied by what the kernel actually did to
// produce it (forks per engine with tail latency, table sharing vs
// copying, fault traffic, allocator shard behaviour, TLB behaviour).
// When the flight recorder was on during the run, a final line breaks
// fork time down by stage (the paper's Figure 3 attribution).

// metricsFooter renders the telemetry accumulated since base, plus the
// trace-derived fork-stage attribution when the recorder is on.
func metricsFooter(k *kernel.Kernel, base metrics.Snapshot) string {
	var att *trace.Attribution
	if k.TraceEnabled() {
		a := trace.Attribute(k.TraceSnapshot())
		att = &a
	}
	return RenderFooter(k.MetricsSnapshot().Sub(base), att)
}

// RenderFooter renders the telemetry footer for a metrics delta. att
// is the optional fork-stage attribution line (nil when tracing was
// off). Pure so the format is golden-testable.
func RenderFooter(d metrics.Snapshot, att *trace.Attribution) string {
	var b strings.Builder
	b.WriteString("\n" + header("System telemetry for this run"))
	cl, od := d.Fork.Classic(), d.Fork.OnDemand()
	fmt.Fprintf(&b, "forks: classic=%d (p50 %v, p99 %v), ondemand=%d (p50 %v, p99 %v)\n",
		cl.Forks, nsDur(cl.Latency.Quantile(0.5)), nsDur(cl.Latency.Quantile(0.99)),
		od.Forks, nsDur(od.Latency.Quantile(0.5)), nsDur(od.Latency.Quantile(0.99)))
	fmt.Fprintf(&b, "page tables: shared=%d copied=%d pmd-shared=%d cow-splits=%d\n",
		d.Fork.TablesShared, d.Fork.TablesCopied, d.Fork.PMDTablesShared, d.Fault.TableSplits)
	fmt.Fprintf(&b, "faults: read=%d write=%d page-copies=%d fast-dedups=%d\n",
		d.Fault.ReadFaults, d.Fault.WriteFaults, d.Fault.PageCopies, d.Fault.FastDedups)
	fmt.Fprintf(&b, "allocator: shard-hits=%d refills=%d drains=%d\n",
		d.Alloc.ShardHits, d.Alloc.ShardRefills, d.Alloc.ShardDrains)
	fmt.Fprintf(&b, "tlb: hits=%d misses=%d shootdowns=%d\n",
		d.TLB.Hits, d.TLB.Misses, d.TLB.Shootdowns)
	fmt.Fprintf(&b, "reclaim: swapout=%d swapin=%d direct-stalls=%d kswapd-wakeups=%d\n",
		d.Reclaim.PswpOut, d.Reclaim.PswpIn, d.Reclaim.DirectReclaims, d.Reclaim.KswapdWakeups)
	// The robustness line only appears when something robustness-worthy
	// happened — for the common healthy run the footer stays unchanged.
	if r := d.Robust; r.InjectedFaults+r.ForkAborts+r.SwapReadRetries+r.SwapWriteRetries+
		r.SwapReadErrors+r.SwapWriteErrors+r.SwapCorruptions+r.SwapDegrades+r.KswapdErrors > 0 {
		fmt.Fprintf(&b, "robustness: injected=%d fork-aborts=%d swap-retries=%d swap-errors=%d corruptions=%d degrades=%d kswapd-errors=%d\n",
			r.InjectedFaults, r.ForkAborts, r.SwapReadRetries+r.SwapWriteRetries,
			r.SwapReadErrors+r.SwapWriteErrors, r.SwapCorruptions, r.SwapDegrades, r.KswapdErrors)
	}
	// Likewise the checkpoint line: only runs that touched durable
	// snapshots (write, restore, or fault-from-disk traffic) carry it.
	if c := d.Ckpt; c.Checkpoints+c.Restores+c.PageIns+c.ReadRetries+
		c.ReadErrors+c.Corruptions+c.Degrades > 0 {
		fmt.Fprintf(&b, "checkpoints: written=%d (pages=%d skipped=%d) restores=%d page-ins=%d read-retries=%d read-errors=%d corruptions=%d degrades=%d\n",
			c.Checkpoints, c.PagesWritten, c.PagesSkipped, c.Restores,
			c.PageIns, c.ReadRetries, c.ReadErrors, c.Corruptions, c.Degrades)
	}
	if att != nil {
		fmt.Fprintf(&b, "%s\n", att)
	}
	return b.String()
}

func nsDur(ns uint64) time.Duration {
	return time.Duration(ns).Round(100 * time.Nanosecond)
}
