package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
)

// Every experiment artifact ends with the same compact telemetry
// block: the delta of the system-wide metrics over the run, so each
// figure's table is accompanied by what the kernel actually did to
// produce it (forks per engine with tail latency, table sharing vs
// copying, fault traffic, allocator shard behaviour, TLB behaviour).

// metricsFooter renders the telemetry accumulated since base.
func metricsFooter(k *kernel.Kernel, base metrics.Snapshot) string {
	d := k.MetricsSnapshot().Sub(base)
	var b strings.Builder
	b.WriteString("\n" + header("System telemetry for this run"))
	cl, od := d.Fork.Classic(), d.Fork.OnDemand()
	fmt.Fprintf(&b, "forks: classic=%d (p50 %v, p99 %v), ondemand=%d (p50 %v, p99 %v)\n",
		cl.Forks, nsDur(cl.Latency.Quantile(0.5)), nsDur(cl.Latency.Quantile(0.99)),
		od.Forks, nsDur(od.Latency.Quantile(0.5)), nsDur(od.Latency.Quantile(0.99)))
	fmt.Fprintf(&b, "page tables: shared=%d copied=%d pmd-shared=%d cow-splits=%d\n",
		d.Fork.TablesShared, d.Fork.TablesCopied, d.Fork.PMDTablesShared, d.Fault.TableSplits)
	fmt.Fprintf(&b, "faults: read=%d write=%d page-copies=%d fast-dedups=%d\n",
		d.Fault.ReadFaults, d.Fault.WriteFaults, d.Fault.PageCopies, d.Fault.FastDedups)
	fmt.Fprintf(&b, "allocator: shard-hits=%d refills=%d drains=%d\n",
		d.Alloc.ShardHits, d.Alloc.ShardRefills, d.Alloc.ShardDrains)
	fmt.Fprintf(&b, "tlb: hits=%d misses=%d shootdowns=%d\n",
		d.TLB.Hits, d.TLB.Misses, d.TLB.Shootdowns)
	fmt.Fprintf(&b, "reclaim: swapout=%d swapin=%d direct-stalls=%d kswapd-wakeups=%d\n",
		d.Reclaim.PswpOut, d.Reclaim.PswpIn, d.Reclaim.DirectReclaims, d.Reclaim.KswapdWakeups)
	return b.String()
}

func nsDur(ns uint64) time.Duration {
	return time.Duration(ns).Round(100 * time.Nanosecond)
}
