package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/vm"
	"repro/internal/profile"
	"repro/internal/stats"
)

// The parallel-fork study measures the two scalability mechanisms
// layered on top of the paper's engines: fanning one fork's tree copy
// out across PMD-slot ranges (ForkOptions.Parallelism), and the
// sharded frame allocator that keeps concurrent forks off the global
// buddy lock. The second table is the Figure 2 concurrent-fork shape
// with the parallel engine switched on; the shard counter report shows
// how much allocation traffic the per-CPU-style caches absorbed.

// ParForkRow is one point of the worker sweep.
type ParForkRow struct {
	Size                  uint64
	Workers               int
	ClassicMS, OnDemandMS float64
}

// parWorkerSet returns the worker counts to sweep, always starting at
// the sequential baseline.
func parWorkerSet(maxWorkers int) []int {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	set := []int{1}
	for _, w := range []int{2, 4, 8} {
		if w <= maxWorkers {
			set = append(set, w)
		}
	}
	if last := set[len(set)-1]; maxWorkers > last {
		set = append(set, maxWorkers)
	}
	return set
}

func measureForkOpts(p *kernel.Process, mode core.ForkMode, opts core.ForkOptions, reps int) (float64, error) {
	var sample stats.Sample
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		c, err := p.Fork(kernel.WithMode(mode), kernel.WithForkOptions(opts))
		elapsed := time.Since(t0)
		if err != nil {
			return 0, err
		}
		sample.AddDuration(elapsed)
		c.Exit()
		c.Wait()
	}
	return sample.Mean(), nil
}

// RunParFork sweeps fork latency over sizes × worker counts for both
// engines, then measures 3 concurrent forks sequential-vs-parallel,
// and reports the allocator shard counters exercised along the way.
func RunParFork(maxBytes uint64, reps, maxWorkers int) ([]ParForkRow, string, error) {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	prof := profile.New()
	k := kernel.New(kernel.WithProfiler(prof))
	base := k.MetricsSnapshot()
	workers := parWorkerSet(maxWorkers)

	var rows []ParForkRow
	tb := stats.NewTable("size", "workers", "fork (ms)", "speedup", "odf (ms)", "speedup")
	for _, size := range SweepSizes(maxBytes) {
		p := k.NewProcess()
		if _, err := p.Mmap(size, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate); err != nil {
			return nil, "", err
		}
		var baseClassic, baseODF float64
		for _, w := range workers {
			opts := core.ForkOptions{Parallelism: w}
			classic, err := measureForkOpts(p, core.ForkClassic, opts, reps)
			if err != nil {
				return nil, "", err
			}
			odf, err := measureForkOpts(p, core.ForkOnDemand, opts, reps)
			if err != nil {
				return nil, "", err
			}
			if w == 1 {
				baseClassic, baseODF = classic, odf
			}
			rows = append(rows, ParForkRow{Size: size, Workers: w, ClassicMS: classic, OnDemandMS: odf})
			tb.AddRow(SizeLabel(size), w, classic,
				fmt.Sprintf("%.2fx", baseClassic/classic),
				odf, fmt.Sprintf("%.2fx", baseODF/odf))
		}
		p.Exit()
	}
	out := header("Parallel fork: latency vs worker count") + tb.String()

	// Figure 2 shape under the parallel engine: 3 concurrent forks.
	concSize := maxBytes / 2
	if concSize < 128*MiB {
		concSize = 128 * MiB
	}
	const concurrent = 3
	ctb := stats.NewTable("engine", "workers", "3 concurrent forks, wall (ms)")
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		for _, w := range []int{1, maxWorkers} {
			procs := make([]*kernel.Process, concurrent)
			for i := range procs {
				procs[i] = k.NewProcess()
				if _, err := procs[i].Mmap(concSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate); err != nil {
					return nil, "", err
				}
			}
			var sample stats.Sample
			for r := 0; r < reps; r++ {
				var wg sync.WaitGroup
				errs := make([]error, concurrent)
				kids := make([]*kernel.Process, concurrent)
				t0 := time.Now()
				for i, p := range procs {
					wg.Add(1)
					go func(i int, p *kernel.Process) {
						defer wg.Done()
						kids[i], errs[i] = p.Fork(kernel.WithMode(mode), kernel.WithWorkers(w))
					}(i, p)
				}
				wg.Wait()
				sample.AddDuration(time.Since(t0))
				for i := range kids {
					if errs[i] != nil {
						return nil, "", errs[i]
					}
					kids[i].Exit()
					kids[i].Wait()
				}
			}
			ctb.AddRow(mode.String(), w, sample.Mean())
			for _, p := range procs {
				p.Exit()
			}
		}
	}
	out += "\n" + header(fmt.Sprintf("Concurrent forks (%s each) with the parallel engine", SizeLabel(concSize))) +
		ctb.String()

	// The allocator shard counters the runs above exercised, read from
	// the system-wide metrics snapshot rather than the profiler.
	alloc := k.MetricsSnapshot().Alloc
	stb := stats.NewTable("allocator shard counter", "events")
	stb.AddRow("shard fast-path hits", int(alloc.ShardHits))
	stb.AddRow("shard refills", int(alloc.ShardRefills))
	stb.AddRow("shard drains", int(alloc.ShardDrains))
	out += "\n" + header("Sharded frame allocator: fast-path hits vs buddy-core round trips") + stb.String()
	out += metricsFooter(k, base)
	return rows, out, nil
}
