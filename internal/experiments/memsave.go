package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/vm"
	"repro/internal/stats"
)

// The memory-savings experiment quantifies the secondary benefit the
// paper inherits from shared page tables (§6.1's McCracken discussion):
// with on-demand-fork, N children of a large process share one set of
// last-level tables instead of owning N copies, so page-table memory
// stays flat as the process tree grows.

// MemSaveRow is one point of the page-table memory comparison.
type MemSaveRow struct {
	Children     int
	ClassicKiB   int64 // page-table frames under classic fork
	OnDemandKiB  int64 // page-table frames under on-demand-fork
	SavingsRatio float64
}

// RunMemSave forks up to maxChildren children from a process with size
// bytes mapped, measuring the *additional* physical frames (all of
// them page tables — no data is written) each engine consumes.
func RunMemSave(size uint64, maxChildren int) ([]MemSaveRow, string, error) {
	measure := func(mode core.ForkMode, n int) (int64, error) {
		k := kernel.New()
		p := k.NewProcess()
		defer p.Exit()
		if _, err := p.Mmap(size, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate); err != nil {
			return 0, err
		}
		before := k.Allocator().Allocated()
		for i := 0; i < n; i++ {
			c, err := p.Fork(kernel.WithMode(mode))
			if err != nil {
				return 0, err
			}
			defer c.Exit()
		}
		return k.Allocator().Allocated() - before, nil
	}

	var rows []MemSaveRow
	tb := stats.NewTable("children", "fork PT mem (KiB)", "odf PT mem (KiB)", "savings")
	for n := 1; n <= maxChildren; n *= 2 {
		classic, err := measure(core.ForkClassic, n)
		if err != nil {
			return nil, "", err
		}
		odf, err := measure(core.ForkOnDemand, n)
		if err != nil {
			return nil, "", err
		}
		row := MemSaveRow{
			Children:    n,
			ClassicKiB:  classic * 4,
			OnDemandKiB: odf * 4,
		}
		if odf > 0 {
			row.SavingsRatio = float64(classic) / float64(odf)
		}
		rows = append(rows, row)
		tb.AddRow(n, float64(row.ClassicKiB), float64(row.OnDemandKiB),
			fmt.Sprintf("%.1fx", row.SavingsRatio))
	}
	return rows, header(fmt.Sprintf("Memory: page-table frames per child tree (%s process)", SizeLabel(size))) +
		tb.String(), nil
}
