package experiments

import (
	"fmt"

	"repro/internal/slo"
	"repro/internal/stats"
)

// RunSLO reproduces the paper's Redis snapshot-while-serving result
// over real TCP sockets: the kv app serves steady isochronous load
// while periodic snapshots fork the serving process, and the tail is
// split into fork-coincident and quiescent samples. Classic fork's
// pause scales with the arena and lands on every fork-coincident
// request; on-demand-fork's does not.
func RunSLO(scale AppScale) (*slo.Result, string, error) {
	requests := scale.Requests
	if requests > 4000 {
		// The sweep is wall-clock bound by offered rate, not service
		// time; 4000 requests per trial is minutes of sockets already.
		requests = 4000
	}
	res, err := slo.RunHarness(slo.HarnessConfig{
		App:        "kv",
		Conns:      2,
		Requests:   requests,
		CalibrateN: 1000,
		Trials:     2,
		ArenaMiB:   int(scale.ArenaBytes >> 20),
		ValueLen:   scale.KVValueLen,
	})
	if err != nil {
		return nil, "", err
	}
	if err := slo.Check(res); err != nil {
		return nil, "", fmt.Errorf("slo: self-check: %w", err)
	}

	tb := stats.NewTable("engine", "offered rps", "p50 (us)", "p99 (us)",
		"fork-coinc p99 (us)", "quiescent p99 (us)", "snapshots")
	for _, run := range res.Runs {
		tb.AddRow(run.Mode, run.OfferedRPS, run.Latency.P50US, run.Latency.P99US,
			fmt.Sprintf("%.1f (n=%d)", run.ForkCoincident.P99US, run.ForkCoincident.Count),
			fmt.Sprintf("%.1f", run.Quiescent.P99US), run.Snapshots)
	}
	text := header("SLO: tail latency under snapshot-while-serving, real TCP sockets") +
		tb.String()
	return res, text, nil
}
