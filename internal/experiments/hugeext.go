package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/vm"
	"repro/internal/stats"
)

// The huge-page extension experiment quantifies the paper's §4 "Huge
// Page Support" sketch — on-demand-fork generalized to 2 MiB mappings
// by sharing the PMD tables that describe them. The paper predicts
// limited (but positive) benefit, since huge-mapped memory has 512x
// fewer entries to copy in the first place.

// HugeExtRow is one configuration's fork latency over huge-mapped
// memory.
type HugeExtRow struct {
	Name   string
	MeanMS float64
	MinMS  float64
}

// RunHugeExt measures fork latency over size bytes of huge-page-backed
// memory for: classic fork, plain on-demand-fork (which falls back to
// per-entry COW for huge mappings), and on-demand-fork with PMD-table
// sharing.
func RunHugeExt(size uint64, reps int) ([]HugeExtRow, string, error) {
	k := kernel.New()
	base := k.MetricsSnapshot()
	p := k.NewProcess()
	defer p.Exit()
	if _, err := p.Mmap(size, vm.ProtRead|vm.ProtWrite,
		vm.MapPrivate|vm.MapHuge|vm.MapPopulate); err != nil {
		return nil, "", err
	}

	configs := []struct {
		name string
		mode core.ForkMode
		opts core.ForkOptions
	}{
		{"fork (classic, huge pages)", core.ForkClassic, core.ForkOptions{}},
		{"on-demand-fork (per-entry COW)", core.ForkOnDemand, core.ForkOptions{}},
		{"on-demand-fork + shared PMD tables", core.ForkOnDemand, core.ForkOptions{ShareHugePMD: true}},
	}
	var rows []HugeExtRow
	for _, cfg := range configs {
		// Warmup.
		if c, err := p.Fork(kernel.WithMode(cfg.mode), kernel.WithForkOptions(cfg.opts)); err == nil {
			c.Exit()
			c.Wait()
		}
		var sample stats.Sample
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			c, err := p.Fork(kernel.WithMode(cfg.mode), kernel.WithForkOptions(cfg.opts))
			elapsed := time.Since(t0)
			if err != nil {
				return nil, "", err
			}
			sample.AddDuration(elapsed)
			c.Exit()
			c.Wait()
		}
		rows = append(rows, HugeExtRow{Name: cfg.name, MeanMS: sample.Mean(), MinMS: sample.Min()})
	}
	tb := stats.NewTable("configuration", "fork time (ms)", "min (ms)")
	for _, r := range rows {
		tb.AddRow(r.Name, r.MeanMS, r.MinMS)
	}
	return rows, header("Extension (paper \u00a74): on-demand-fork over huge pages ("+SizeLabel(size)+")") +
		tb.String() + metricsFooter(k, base), nil
}
