package experiments

import (
	"strings"
	"testing"

	"repro/internal/profile"
)

// Tiny scales so the whole experiment surface runs in test time.
func tinyScale() AppScale {
	return AppScale{
		SQLiteItems: 1500,
		ArenaBytes:  32 * MiB,
		KVKeys:      1000,
		KVValueLen:  32,
		VMRAMBytes:  16 * MiB,
		FuzzSeconds: 1,
		Requests:    1500,
	}
}

func TestSizeLabel(t *testing.T) {
	if got := SizeLabel(512 * MiB); got != "512MB" {
		t.Errorf("SizeLabel = %q", got)
	}
	if got := SizeLabel(2 * GiB); got != "2GB" {
		t.Errorf("SizeLabel = %q", got)
	}
	if got := SizeLabel(GiB + GiB/2); got != "1.5GB" {
		t.Errorf("SizeLabel = %q", got)
	}
}

func TestSweepSizes(t *testing.T) {
	sizes := SweepSizes(GiB)
	if len(sizes) != 4 { // 128, 256, 512 MiB, 1 GiB
		t.Fatalf("sweep = %v", sizes)
	}
	if sizes[0] != 128*MiB || sizes[3] != GiB {
		t.Errorf("sweep endpoints = %v", sizes)
	}
}

func TestRunFig2(t *testing.T) {
	rows, text, err := RunFig2(256*MiB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Linear shape: doubling memory should increase fork time
	// (asserted on minima, which are robust to host noise).
	if rows[1].SeqMinMS <= rows[0].SeqMinMS*1.2 {
		t.Errorf("fork time not growing with size: %v -> %v", rows[0].SeqMinMS, rows[1].SeqMinMS)
	}
	if !strings.Contains(text, "Figure 2") || !strings.Contains(text, "128MB") {
		t.Errorf("text malformed:\n%s", text)
	}
}

func TestRunFig3(t *testing.T) {
	prof, text, err := RunFig3(64*MiB, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 3 shape: compound_head + page_ref_inc dominate.
	rep := prof.Report()
	if len(rep) == 0 {
		t.Fatal("empty profile")
	}
	if rep[0].Name != profile.CompoundHead {
		t.Errorf("top cost = %s, want compound_head", rep[0].Name)
	}
	var topTwo float64
	for _, s := range rep {
		if s.Name == profile.CompoundHead || s.Name == profile.PageRefInc {
			topTwo += s.Percent
		}
	}
	if topTwo < 60 {
		t.Errorf("compound_head+page_ref_inc = %.1f%%, want the bulk", topTwo)
	}
	if !strings.Contains(text, "compound_head") {
		t.Error("text missing hotspot")
	}
}

func TestRunFig7(t *testing.T) {
	rows, text, err := RunFig7(256*MiB, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Figure 7 shape, asserted on minima (robust to GC pauses in
		// individual samples): both huge-page fork and on-demand-fork are
		// far below classic fork, and ODF is at least comparable to huge
		// pages (the paper reports it slightly ahead; at small sizes the
		// two are within noise of each other).
		if r.HugeMinMS > r.ForkMinMS/5 {
			t.Errorf("%s: huge fork (%.4f) not well below classic (%.4f)",
				SizeLabel(r.Size), r.HugeMinMS, r.ForkMinMS)
		}
		if r.OnDemandMinMS > r.ForkMinMS/5 {
			t.Errorf("%s: odf (%.4f) not well below classic (%.4f)",
				SizeLabel(r.Size), r.OnDemandMinMS, r.ForkMinMS)
		}
		if r.OnDemandMinMS > r.HugeMinMS*2 {
			t.Errorf("%s: odf (%.4f) clearly slower than huge pages (%.4f)",
				SizeLabel(r.Size), r.OnDemandMinMS, r.HugeMinMS)
		}
	}
	if !strings.Contains(text, "speedup") {
		t.Error("text missing speedup column")
	}
}

func TestRunTab1(t *testing.T) {
	rows, text, err := RunTab1(16*MiB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	classic, huge, odf := rows[0].MeanMS, rows[1].MeanMS, rows[2].MeanMS
	// Table 1 ordering: classic < odf < huge.
	if !(classic < odf && odf < huge) {
		t.Errorf("fault cost ordering violated: classic=%.5f huge=%.5f odf=%.5f",
			classic, huge, odf)
	}
	if !strings.Contains(text, "Table 1") {
		t.Error("text malformed")
	}
}

func TestRunFig8Small(t *testing.T) {
	rows, text, err := RunFig8(64*MiB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 { // 5 mixes x 6 accessed points
		t.Fatalf("rows = %d", len(rows))
	}
	// At 0% accessed the reduction must be large for every mix. (At
	// this tiny test scale the measured interval is tens of
	// microseconds, so the threshold is loose; the full-size harness
	// reproduces the paper's ~99%.)
	for _, r := range rows {
		if r.AccessedPct == 0 && r.ReductionPC < 30 {
			t.Errorf("mix %d%%: reduction at 0%% accessed = %.1f", r.ReadPct, r.ReductionPC)
		}
	}
	if !strings.Contains(text, "Figure 8") {
		t.Error("text malformed")
	}
}

func TestRunTab2And3(t *testing.T) {
	scale := tinyScale()
	res2, text2, err := RunTab2(scale)
	if err != nil {
		t.Fatal(err)
	}
	if res2.InitMS <= res2.TestMS {
		t.Errorf("init does not dominate: %+v", res2)
	}
	if !strings.Contains(text2, "Initialization") {
		t.Error("tab2 text malformed")
	}

	res3, text3, err := RunTab3(scale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res3[1].ForkMS >= res3[0].ForkMS {
		t.Errorf("tab3: odf fork (%.4f) not faster than classic (%.4f)",
			res3[1].ForkMS, res3[0].ForkMS)
	}
	if !strings.Contains(text3, "on-demand-fork") {
		t.Error("tab3 text malformed")
	}
}

func TestRunTab45(t *testing.T) {
	scale := tinyScale()
	scale.Requests = 3000
	res, text, err := RunTab45(scale)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Snapshots == 0 || res[1].Snapshots == 0 {
		t.Skipf("too few requests to trigger snapshots at this scale: %+v", res)
	}
	if res[1].ForkMean >= res[0].ForkMean {
		t.Errorf("tab5: odf fork mean (%.4f) not below classic (%.4f)",
			res[1].ForkMean, res[0].ForkMean)
	}
	if !strings.Contains(text, "Table 4") || !strings.Contains(text, "Table 5") {
		t.Error("text malformed")
	}
}

func TestRunFig9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	res, text, err := RunFig9(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Execs == 0 || res[1].Execs == 0 {
		t.Fatalf("no executions: %+v", res)
	}
	if res[1].MeanRate <= res[0].MeanRate {
		t.Errorf("fig9: odf rate (%.1f) not above classic (%.1f)",
			res[1].MeanRate, res[0].MeanRate)
	}
	if !strings.Contains(text, "Figure 9") {
		t.Error("text malformed")
	}
}

func TestRunFig10Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	// A larger guest than the other tiny-scale runs: at 16 MiB the
	// per-input guest work dominates both engines and the comparison is
	// noise; at 64 MiB the classic clone cost is clearly visible.
	scale := tinyScale()
	scale.VMRAMBytes = 64 * MiB
	scale.FuzzSeconds = 2
	res, text, err := RunFig10(scale)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Execs == 0 || res[1].Execs == 0 {
		t.Fatalf("no executions: %+v", res)
	}
	if res[1].MeanRate <= res[0].MeanRate {
		t.Errorf("fig10: odf rate (%.1f) not above classic (%.1f)",
			res[1].MeanRate, res[0].MeanRate)
	}
	if !strings.Contains(text, "Figure 10") {
		t.Error("text malformed")
	}
}

func TestRunTab67(t *testing.T) {
	scale := tinyScale()
	res, text, err := RunTab67(scale)
	if err != nil {
		t.Fatal(err)
	}
	// The negative result: means within 50% of each other (generous,
	// since both should be statistically identical).
	ratio := res[1].MeanUS / res[0].MeanUS
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("httpd means diverge: classic=%.1f odf=%.1f", res[0].MeanUS, res[1].MeanUS)
	}
	if !strings.Contains(text, "Table 6") || !strings.Contains(text, "Table 7") {
		t.Error("text malformed")
	}
}

func TestRunAblation(t *testing.T) {
	rows, text, err := RunAblation(64*MiB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	classic, odf := rows[0].MeanMS, rows[1].MeanMS
	eager, both := rows[2].MeanMS, rows[4].MeanMS
	if odf >= classic {
		t.Errorf("odf (%.4f) not below classic (%.4f)", odf, classic)
	}
	// Re-adding per-page work must cost more than plain odf.
	if eager <= odf {
		t.Errorf("eager refs (%.4f) not above odf (%.4f)", eager, odf)
	}
	if both <= odf {
		t.Errorf("both ablations (%.4f) not above odf (%.4f)", both, odf)
	}
	if !strings.Contains(text, "Ablation") {
		t.Error("text malformed")
	}
}

func TestRunHugeExt(t *testing.T) {
	rows, text, err := RunHugeExt(256*MiB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	classic, plain, shared := rows[0].MinMS, rows[1].MinMS, rows[2].MinMS
	// The extension must not be slower than per-entry COW of huge
	// mappings, and both stay at least comparable to classic (at 2 MiB
	// granularity all three touch few entries; sharing touches fewest).
	if shared > plain*1.5 {
		t.Errorf("shared PMD fork (%.4f) slower than per-entry ODF (%.4f)", shared, plain)
	}
	if shared > classic*1.5 {
		t.Errorf("shared PMD fork (%.4f) slower than classic (%.4f)", shared, classic)
	}
	if !strings.Contains(text, "shared PMD") {
		t.Error("text malformed")
	}
}

func TestRunMemSave(t *testing.T) {
	rows, text, err := RunMemSave(128*MiB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 1, 2, 4 children
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SavingsRatio < 2 {
			t.Errorf("%d children: savings %.1fx, want substantial", r.Children, r.SavingsRatio)
		}
	}
	// Both grow linearly per child (each child owns its upper tables),
	// but ODF's per-child cost is just the 3 upper-level tables (12 KiB)
	// while classic's includes every last-level table.
	if perChild := rows[2].OnDemandKiB / 4; perChild > 16 {
		t.Errorf("odf per-child PT memory = %d KiB, want upper tables only", perChild)
	}
	if rows[2].ClassicKiB < rows[0].ClassicKiB*3 {
		t.Errorf("classic PT memory not growing: %d -> %d", rows[0].ClassicKiB, rows[2].ClassicKiB)
	}
	if !strings.Contains(text, "savings") {
		t.Error("text malformed")
	}
}
