package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/vm"
	"repro/internal/stats"
)

// The ablation study quantifies the design choices DESIGN.md §5 calls
// out, by adding back — one at a time — the per-page work that
// on-demand-fork removes:
//
//   - eager page refcounting (vs the table-refcount accounting of §3.6);
//   - per-PTE write protection (vs one PMD-entry downgrade, §3.2);
//   - both (which approximates what sharing tables *without* the
//     paper's two tricks would cost);
//
// against the classic fork and unmodified on-demand-fork baselines.

// AblationRow is one configuration's fork latency.
type AblationRow struct {
	Name   string
	MeanMS float64
}

// RunAblation measures fork invocation latency for the five
// configurations at the given memory size.
func RunAblation(size uint64, reps int) ([]AblationRow, string, error) {
	k := kernel.New()
	mbase := k.MetricsSnapshot()
	p := k.NewProcess()
	defer p.Exit()
	if _, err := p.Mmap(size, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate); err != nil {
		return nil, "", err
	}

	configs := []struct {
		name string
		mode core.ForkMode
		opts core.ForkOptions
	}{
		{"fork (classic)", core.ForkClassic, core.ForkOptions{}},
		{"on-demand-fork", core.ForkOnDemand, core.ForkOptions{}},
		{"odf + eager page refs", core.ForkOnDemand, core.ForkOptions{EagerPageRefs: true}},
		{"odf + per-PTE protect", core.ForkOnDemand, core.ForkOptions{PerPTEProtect: true}},
		{"odf + both", core.ForkOnDemand, core.ForkOptions{EagerPageRefs: true, PerPTEProtect: true}},
	}
	var rows []AblationRow
	for _, cfg := range configs {
		var sample stats.Sample
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			c, err := p.Fork(kernel.WithMode(cfg.mode), kernel.WithForkOptions(cfg.opts))
			elapsed := time.Since(t0)
			if err != nil {
				return nil, "", err
			}
			sample.AddDuration(elapsed)
			c.Exit()
			c.Wait()
		}
		rows = append(rows, AblationRow{Name: cfg.name, MeanMS: sample.Mean()})
	}

	tb := stats.NewTable("configuration", "fork time (ms)", "vs odf")
	base := rows[1].MeanMS
	for _, r := range rows {
		tb.AddRow(r.Name, r.MeanMS, fmt.Sprintf("%.1fx", r.MeanMS/base))
	}
	return rows, header(fmt.Sprintf("Ablation: fork cost of re-adding per-page work (%s)", SizeLabel(size))) +
		tb.String() + metricsFooter(k, mbase), nil
}
