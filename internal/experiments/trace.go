package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/trace"
)

// The trace experiment drives one representative window of everything
// the flight recorder instruments — both fork engines with parallel
// workers, the CoW fault ladder, and a swap-pressure phase that runs
// kswapd and direct reclaim — and reports what the recorder captured:
// event counts by name plus the Figure 3-style fork-stage attribution.
// The caller exports the same snapshot as Chrome trace-event JSON (the
// odf-bench -trace-out flag, `make trace`) for Perfetto.

// RunTrace records a traced fork/fault/reclaim window. It returns the
// captured snapshot (for export) and the text artifact.
func RunTrace(maxBytes uint64, reps int) (trace.Snapshot, string, error) {
	foot := maxBytes / 8
	if foot < 8*MiB {
		foot = 8 * MiB
	}
	if foot > 64*MiB {
		foot = 64 * MiB
	}
	pages := int(foot / addr.PageSize)

	k := kernel.New()
	base := k.MetricsSnapshot()
	k.SetTraceEnabled(true)
	defer k.SetTraceEnabled(false)

	p := k.NewProcess()
	defer p.Exit()
	v, err := p.Mmap(uint64(pages)*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		return trace.Snapshot{}, "", err
	}
	for i := 0; i < pages; i += 2 {
		if err := p.StoreByte(v+addr.V(i*addr.PageSize), byte(i)); err != nil {
			return trace.Snapshot{}, "", err
		}
	}

	// Phase 1: both engines, sequential and fanned out, children
	// exercising the fault ladder (table copy, then page copies).
	for rep := 0; rep < reps; rep++ {
		for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
			c, err := p.Fork(kernel.WithMode(mode), kernel.WithWorkers(4))
			if err != nil {
				return trace.Snapshot{}, "", err
			}
			for i := 0; i < pages; i += 64 {
				if err := c.StoreByte(v+addr.V(i*addr.PageSize), byte(rep)); err != nil {
					c.Exit()
					return trace.Snapshot{}, "", err
				}
			}
			c.Exit()
		}
	}

	// Phase 2: swap pressure. Clamp frames below a (smaller) working
	// set so writes stall in direct reclaim, kswapd trims, and re-reads
	// fault pages back in from the swap store. The set is kept well
	// under the ring capacity so this phase's event flood does not
	// overwrite the fork timeline of phase 1 (the ring drops oldest).
	pp := pages / 8
	if pp > trace.DefaultCapacity/16 {
		pp = trace.DefaultCapacity / 16
	}
	k.SetSwapEnabled(true)
	defer k.SetSwapEnabled(false)
	k.Allocator().SetLimit(k.Allocator().Allocated() + int64(pp)/2)
	defer k.Allocator().SetLimit(0)
	q := k.NewProcess()
	defer q.Exit()
	w, err := q.Mmap(uint64(pp)*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
	if err != nil {
		return trace.Snapshot{}, "", err
	}
	for i := 0; i < pp; i++ {
		if err := q.StoreByte(w+addr.V(i*addr.PageSize), byte(i)); err != nil {
			return trace.Snapshot{}, "", err
		}
	}
	for i := 0; i < pp; i += 4 {
		if _, err := q.LoadByte(w + addr.V(i*addr.PageSize)); err != nil {
			return trace.Snapshot{}, "", err
		}
	}

	s := k.TraceSnapshot()
	var b strings.Builder
	b.WriteString(header("Flight recorder: traced fork/fault/reclaim window"))
	fmt.Fprintf(&b, "events recorded: %d (dropped %d)\n", len(s.Events), s.Dropped)
	counts := map[string]int{}
	var names []string
	for _, e := range s.Events {
		name := e.Name()
		if counts[name] == 0 {
			names = append(names, name)
		}
		counts[name]++
	}
	for _, name := range names {
		fmt.Fprintf(&b, "  %-18s %d\n", name, counts[name])
	}
	b.WriteString(metricsFooter(k, base))
	return s, b.String(), nil
}
