// Package experiments regenerates every table and figure in the
// paper's evaluation (§5) from the simulated kernel: the fork-latency
// sweeps (Figures 2, 4, 7), the profile attribution (Figure 3), the
// fault-cost comparison (Table 1), the fork-plus-access sweeps
// (Figure 8), and the application studies (Figure 9, Tables 2–5,
// Figure 10, Tables 6–7). Each Run* function returns a rendered
// plain-text artifact plus the underlying data, and is wired to both
// the odf-bench CLI and the repository's benchmark suite.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/vm"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MiB and GiB express experiment sizes.
const (
	MiB = uint64(1) << 20
	GiB = uint64(1) << 30
)

// SizeLabel renders a byte count the way the paper's axes do.
func SizeLabel(b uint64) string {
	switch {
	case b >= GiB:
		return fmt.Sprintf("%gGB", float64(b)/float64(GiB))
	default:
		return fmt.Sprintf("%gMB", float64(b)/float64(MiB))
	}
}

// SweepSizes returns the memory sizes for latency sweeps: powers of two
// from 128 MiB up to maxBytes (the paper sweeps 0.5–50 GB; the default
// simulation cap keeps host cost bounded — see DESIGN.md §6).
func SweepSizes(maxBytes uint64) []uint64 {
	var out []uint64
	for s := 128 * MiB; s <= maxBytes; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Fig2Row is one point of Figure 2.
type Fig2Row struct {
	Size              uint64
	SeqMS, SeqMinMS   float64
	ConcMS, ConcMinMS float64
}

// RunFig2 measures classic fork latency over the size sweep, once
// sequentially and once with three concurrent benchmark instances.
func RunFig2(maxBytes uint64, reps int) ([]Fig2Row, string, error) {
	k := kernel.New()
	base := k.MetricsSnapshot()
	var rows []Fig2Row
	cfg := workload.Config{Mode: core.ForkClassic}
	for _, size := range SweepSizes(maxBytes) {
		seq, err := workload.MeasureForkLatency(k, cfg, size, reps)
		if err != nil {
			return nil, "", err
		}
		conc, err := workload.MeasureForkLatencyConcurrent(k, cfg, size, reps, 3)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Fig2Row{
			Size:      size,
			SeqMS:     seq.Lat.Mean,
			SeqMinMS:  seq.Lat.Min,
			ConcMS:    conc.Lat.Mean,
			ConcMinMS: conc.Lat.Min,
		})
	}
	tb := stats.NewTable("size", "sequential (ms)", "seq min", "concurrent 3x (ms)", "conc min")
	for _, r := range rows {
		tb.AddRow(SizeLabel(r.Size), r.SeqMS, r.SeqMinMS, r.ConcMS, r.ConcMinMS)
	}
	return rows, header("Figure 2: fork execution time vs allocated memory") + tb.String() +
		metricsFooter(k, base), nil
}

// RunFig3 reproduces the Figure 3 profile: repeated classic forks of a
// fixed-size process, with the cost-accounting attribution of the
// simulated kernel functions (see DESIGN.md for the perf substitution).
func RunFig3(size uint64, reps int) (*profile.Profiler, string, error) {
	prof := profile.New()
	k := kernel.New(kernel.WithProfiler(prof))
	p := k.NewProcess()
	defer p.Exit()
	if _, err := p.Mmap(size, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate); err != nil {
		return nil, "", err
	}
	prof.Reset()
	for i := 0; i < reps; i++ {
		c, err := p.Fork(kernel.WithMode(core.ForkClassic))
		if err != nil {
			return nil, "", err
		}
		prof.SetEnabled(false) // exclude child teardown, like perf's fork focus
		c.Exit()
		prof.SetEnabled(true)
	}
	out := header(fmt.Sprintf("Figure 3: classic fork profile (%s, %d forks)", SizeLabel(size), reps)) +
		prof.String()
	return prof, out, nil
}

// Fig7Row is one point of Figures 4 and 7. Min values are reported
// alongside means because they are robust to host-side noise (GC
// pauses land in individual samples).
type Fig7Row struct {
	Size                                uint64
	ForkMS, HugeMS, OnDemandMS          float64
	ForkMinMS, HugeMinMS, OnDemandMinMS float64
}

// RunFig7 measures invocation latency for all three engines over the
// sweep (Figure 7; the huge-page column alone is Figure 4).
func RunFig7(maxBytes uint64, reps int) ([]Fig7Row, string, error) {
	k := kernel.New()
	base := k.MetricsSnapshot()
	var rows []Fig7Row
	for _, size := range SweepSizes(maxBytes) {
		row := Fig7Row{Size: size}
		for _, cfg := range []struct {
			c        workload.Config
			dst, min *float64
		}{
			{workload.Config{Mode: core.ForkClassic}, &row.ForkMS, &row.ForkMinMS},
			{workload.Config{Mode: core.ForkClassic, Huge: true}, &row.HugeMS, &row.HugeMinMS},
			{workload.Config{Mode: core.ForkOnDemand}, &row.OnDemandMS, &row.OnDemandMinMS},
		} {
			res, err := workload.MeasureForkLatency(k, cfg.c, size, reps)
			if err != nil {
				return nil, "", err
			}
			*cfg.dst = res.Lat.Mean
			*cfg.min = res.Lat.Min
		}
		rows = append(rows, row)
	}
	tb := stats.NewTable("size", "fork (ms)", "fork w/ huge pages (ms)", "on-demand-fork (ms)", "speedup")
	for _, r := range rows {
		tb.AddRow(SizeLabel(r.Size), r.ForkMS, r.HugeMS, r.OnDemandMS,
			fmt.Sprintf("%.1fx", r.ForkMS/r.OnDemandMS))
	}
	return rows, header("Figures 4+7: fork invocation latency by engine") + tb.String() +
		metricsFooter(k, base), nil
}

// Tab1Row is one row of Table 1.
type Tab1Row struct {
	Name   string
	MeanMS float64
}

// RunTab1 measures the worst-case page-fault cost for each engine.
func RunTab1(size uint64, reps int) ([]Tab1Row, string, error) {
	k := kernel.New()
	base := k.MetricsSnapshot()
	var rows []Tab1Row
	for _, cfg := range []workload.Config{
		{Mode: core.ForkClassic},
		{Mode: core.ForkClassic, Huge: true},
		{Mode: core.ForkOnDemand},
	} {
		sum, err := workload.MeasureFaultCost(k, cfg, size, reps)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, Tab1Row{Name: cfg.Name(), MeanMS: sum.Mean})
	}
	tb := stats.NewTable("type", "avg. time (ms)")
	for _, r := range rows {
		tb.AddRow(r.Name, r.MeanMS)
	}
	return rows, header(fmt.Sprintf("Table 1: worst-case page fault cost (%s region)", SizeLabel(size))) +
		tb.String() + metricsFooter(k, base), nil
}

// RunFig8 sweeps the fraction of memory accessed after fork for the
// paper's five read/write mixes, reporting the time reduction of
// on-demand-fork over classic fork.
func RunFig8(size uint64, reps int) ([]workload.AccessMixResult, string, error) {
	k := kernel.New()
	base := k.MetricsSnapshot()
	accessed := []int{0, 20, 40, 60, 80, 100}
	readMixes := []int{0, 25, 50, 75, 100}
	var rows []workload.AccessMixResult
	tb := stats.NewTable("accessed %", "read %", "fork (ms)", "odf (ms)", "reduction %")
	for _, rm := range readMixes {
		for _, ac := range accessed {
			res, err := workload.MeasureAccessMix(k, size, ac, rm, reps)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, res)
			tb.AddRow(res.AccessedPct, res.ReadPct, res.ClassicMS, res.ODFMS, res.ReductionPC)
		}
	}
	return rows, header(fmt.Sprintf("Figure 8: total cost vs memory accessed (%s region)", SizeLabel(size))) +
		tb.String() + metricsFooter(k, base), nil
}

func header(title string) string {
	return title + "\n" + strings.Repeat("=", len(title)) + "\n"
}
