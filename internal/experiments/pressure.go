package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/vm"
	"repro/internal/stats"
)

// The memory-pressure study measures what the reclaim subsystem buys
// the paper's headline operation. A serverless host runs close to its
// frame budget: we populate a dirty working set, clamp the frame limit
// so the set occupies 90% / 99% of it, then fork and run an
// invocation (the child COW-writes a quarter of the footprint). Both
// engines defer page copying to the fault path, so the bare fork only
// needs page-table frames and squeezes into either headroom — but the
// invocation's COW copies do not fit. Without swap they die with
// ErrOutOfMemory; with swap on, the faulting child stalls in direct
// reclaim (and kswapd trims ahead of it), pages swap out, and the
// invocation completes at a latency cost the tables quantify.

// PressureRow is one cell of the occupancy x swap sweep.
type PressureRow struct {
	Size      uint64
	Occupancy int  // percent of the frame limit occupied before forking
	Swap      bool // swap store available to the reclaimer
	Mode      core.ForkMode
	ForkMS    float64 // bare fork latency
	InvokeMS  float64 // fork + COW-write 1/4 of the footprint + exit
	ForkOOM   bool    // the fork itself ran out of page-table frames
	InvokeOOM bool    // the invocation's COW copies hit ErrOutOfMemory
}

// measureForkPressure times reps bare forks, converting an in-flight
// phys.ErrNoMemory panic into an OOM cell: fork has no reclaim stall
// path (a real kernel would invoke the OOM killer here), and the
// experiment reports that outcome rather than crashing. An OOM'd fork
// leaves the process half-built, so callers must discard the kernel
// afterwards.
func measureForkPressure(p *kernel.Process, mode core.ForkMode, reps int) (ms float64, oom bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e, ok := r.(error); ok && errors.Is(e, phys.ErrNoMemory) {
			oom = true
			return
		}
		panic(r)
	}()
	var sample stats.Sample
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		c, err := p.Fork(kernel.WithMode(mode))
		elapsed := time.Since(t0)
		if err != nil {
			return 0, true
		}
		sample.AddDuration(elapsed)
		c.Exit()
		c.Wait()
	}
	return sample.Mean(), false
}

// measureInvokePressure times reps of fork + child COW burst + exit:
// the child dirties every fourth page of the footprint, which under a
// tight frame limit forces its page copies through the reclaim stall
// path (or into ErrOutOfMemory with swap off — reported as an OOM
// cell, not an error).
func measureInvokePressure(p *kernel.Process, base addr.V, pages int, mode core.ForkMode, reps int) (float64, bool, error) {
	var sample stats.Sample
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		c, err := p.Fork(kernel.WithMode(mode))
		if err != nil {
			return 0, true, nil
		}
		for i := 0; i < pages; i += 4 {
			if err := c.WriteAt([]byte{byte(i)}, base+addr.V(uint64(i)*addr.PageSize)); err != nil {
				c.Exit()
				c.Wait()
				if errors.Is(err, core.ErrOutOfMemory) {
					return 0, true, nil
				}
				return 0, false, err
			}
		}
		c.Exit()
		c.Wait()
		sample.AddDuration(time.Since(t0))
	}
	return sample.Mean(), false, nil
}

// pressureCell boots a fresh kernel, populates a dirty footprint, and
// clamps the frame limit so the footprint occupies occ percent of it.
// occ == 0 means unlimited (the baseline row).
func pressureCell(foot uint64, occ int, swap bool) (*kernel.Kernel, *kernel.Process, addr.V, error) {
	k := kernel.New()
	if swap {
		k.SetSwapEnabled(true)
	}
	p := k.NewProcess()
	base, err := p.Mmap(foot, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
	if err != nil {
		return nil, nil, 0, err
	}
	// Dirty every page with non-zero data so evictions pay the real
	// compress-and-store cost rather than folding into the zero page.
	buf := make([]byte, addr.PageSize)
	for i := range buf {
		buf[i] = byte(i*31 + 7)
	}
	pages := int(foot / addr.PageSize)
	for i := 0; i < pages; i++ {
		buf[0] = byte(i)
		if err := p.WriteAt(buf, base+addr.V(uint64(i)*addr.PageSize)); err != nil {
			return nil, nil, 0, err
		}
	}
	if occ > 0 {
		// allocated / limit == occ%; the remainder is all the headroom
		// the fork and its invocation get.
		allocated := k.Allocator().Allocated()
		k.Allocator().SetLimit(allocated * 100 / int64(occ))
	}
	return k, p, base, nil
}

// RunPressure sweeps bare-fork and invocation latency over {baseline,
// 90%, 99%} frame occupancy with the swap store off and on.
func RunPressure(maxBytes uint64, reps int) ([]PressureRow, string, error) {
	foot := maxBytes / 8
	if foot < 16*MiB {
		foot = 16 * MiB
	}
	if foot > 128*MiB {
		foot = 128 * MiB
	}
	pages := int(foot / addr.PageSize)

	var rows []PressureRow
	tb := stats.NewTable("footprint", "occupancy", "swap",
		"fork (ms)", "odf (ms)", "invoke fork (ms)", "invoke odf (ms)")
	cell := func(ms float64, oom bool) any {
		if oom {
			return "OOM"
		}
		return ms
	}
	var lastSwapK *kernel.Kernel
	for _, swap := range []bool{false, true} {
		for _, occ := range []int{0, 90, 99} {
			k, p, base, err := pressureCell(foot, occ, swap)
			if err != nil {
				return nil, "", err
			}
			type meas struct {
				fork, invoke       float64
				forkOOM, invokeOOM bool
			}
			var m [2]meas // indexed: 0 = classic, 1 = on-demand
			abandoned := false
			for mi, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
				m[mi].invoke, m[mi].invokeOOM, err = measureInvokePressure(p, base, pages, mode, reps)
				if err != nil {
					return nil, "", err
				}
				// Bare forks last: a table-allocation OOM panics mid-fork
				// and leaves the process unusable.
				m[mi].fork, m[mi].forkOOM = measureForkPressure(p, mode, reps)
				if m[mi].forkOOM {
					// The panic left p unusable; nothing further can be
					// measured on this kernel.
					abandoned = true
					for j := mi + 1; j < len(m); j++ {
						m[j].forkOOM, m[j].invokeOOM = true, true
					}
					break
				}
				rows = append(rows, PressureRow{foot, occ, swap, mode,
					m[mi].fork, m[mi].invoke, m[mi].forkOOM, m[mi].invokeOOM})
			}
			occLabel := "unlimited"
			if occ > 0 {
				occLabel = fmt.Sprintf("%d%%", occ)
			}
			swapLabel := "off"
			if swap {
				swapLabel = "on"
			}
			tb.AddRow(SizeLabel(foot), occLabel, swapLabel,
				cell(m[0].fork, m[0].forkOOM), cell(m[1].fork, m[1].forkOOM),
				cell(m[0].invoke, m[0].invokeOOM), cell(m[1].invoke, m[1].invokeOOM))
			// An OOM'd bare fork leaves p unusable (and un-exitable);
			// those kernels are simply abandoned to the GC.
			switch {
			case swap && occ == 99:
				lastSwapK = k // telemetry read below; kswapd keeps running
			case swap:
				k.SetSwapEnabled(false) // park kswapd on finished kernels
			case !abandoned:
				p.Exit()
			}
		}
	}
	out := header("Fork and invocation latency under memory pressure (swap off/on)") + tb.String()

	// Telemetry from the 99% swap-on kernel: how hard the reclaimer
	// worked to let the invocations finish inside 1% headroom.
	if lastSwapK != nil {
		d := lastSwapK.MetricsSnapshot()
		rt := stats.NewTable("reclaim counter (99% swap-on cell)", "events")
		rt.AddRow("direct reclaim stalls", int(d.Reclaim.DirectReclaims))
		rt.AddRow("pages swapped out", int(d.Reclaim.PswpOut))
		rt.AddRow("pages swapped in", int(d.Reclaim.PswpIn))
		rt.AddRow("pages scanned (direct)", int(d.Reclaim.PgScanDirect))
		rt.AddRow("kswapd wakeups", int(d.Reclaim.KswapdWakeups))
		out += "\n" + header("Reclaim work behind the swap-on columns") + rt.String()
	}
	return rows, out, nil
}
