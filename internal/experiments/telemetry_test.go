package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureDelta builds a deterministic metrics delta covering every
// footer line, with histogram values that survive Quantile exactly
// (single observations report themselves).
func fixtureDelta() metrics.Snapshot {
	var d metrics.Snapshot
	var cl, od metrics.Histogram
	cl.Observe(250 * time.Microsecond)
	od.Observe(4 * time.Microsecond)
	d.Fork.Engines[metrics.EngineClassic] = metrics.EngineSnapshot{Forks: 1, Latency: cl.Snapshot()}
	d.Fork.Engines[metrics.EngineOnDemand] = metrics.EngineSnapshot{Forks: 1, Latency: od.Snapshot()}
	d.Fork.TablesShared = 512
	d.Fork.TablesCopied = 3
	d.Fork.PMDTablesShared = 2
	d.Fault.TableSplits = 7
	d.Fault.ReadFaults = 100
	d.Fault.WriteFaults = 40
	d.Fault.PageCopies = 33
	d.Fault.FastDedups = 5
	d.Alloc.ShardHits = 900
	d.Alloc.ShardRefills = 30
	d.Alloc.ShardDrains = 28
	d.TLB.Hits = 5000
	d.TLB.Misses = 140
	d.TLB.Shootdowns = 2
	d.Reclaim.PswpOut = 64
	d.Reclaim.PswpIn = 16
	d.Reclaim.DirectReclaims = 3
	d.Reclaim.KswapdWakeups = 1
	d.Robust.InjectedFaults = 25
	d.Robust.ForkAborts = 3
	d.Robust.SwapReadRetries = 4
	d.Robust.SwapWriteRetries = 2
	d.Robust.SwapReadErrors = 1
	d.Robust.SwapCorruptions = 1
	d.Robust.SwapDegrades = 1
	d.Robust.KswapdErrors = 1
	d.Ckpt.Checkpoints = 2
	d.Ckpt.PagesWritten = 96
	d.Ckpt.PagesSkipped = 1000
	d.Ckpt.Restores = 1
	d.Ckpt.PageIns = 48
	d.Ckpt.ReadRetries = 2
	d.Ckpt.Corruptions = 1
	return d
}

// TestRenderFooterNoCkptLine checks a run with no durable-checkpoint
// activity renders no checkpoints line — the healthy-footer contract.
func TestRenderFooterNoCkptLine(t *testing.T) {
	d := fixtureDelta()
	d.Ckpt = metrics.CkptSnapshot{}
	if got := RenderFooter(d, nil); strings.Contains(got, "checkpoints:") {
		t.Errorf("footer without ckpt activity still renders a checkpoints line:\n%s", got)
	}
}

// TestRenderFooterGolden pins the telemetry footer format, including
// the trace-attribution line, on a fixed metrics delta.
func TestRenderFooterGolden(t *testing.T) {
	att := &trace.Attribution{
		Forks:    8,
		Walk:     2 * time.Microsecond,
		Share:    10 * time.Microsecond,
		Refcount: 6 * time.Microsecond,
		TLB:      2 * time.Microsecond,
	}
	got := RenderFooter(fixtureDelta(), att)
	path := filepath.Join("testdata", "footer.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("footer differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestRenderFooterNoAttribution checks the footer without tracing is
// byte-identical except for the missing attribution line.
func TestRenderFooterNoAttribution(t *testing.T) {
	withAtt := RenderFooter(fixtureDelta(), &trace.Attribution{Forks: 1, Share: time.Microsecond})
	without := RenderFooter(fixtureDelta(), nil)
	attLine := "fork stages: walk=0.0% share=100.0% refcount=0.0% tlb=0.0% (1 forks traced)\n"
	if withAtt != without+attLine {
		t.Errorf("attribution line mismatch:\nwith:\n%s\nwithout:\n%s", withAtt, without)
	}
}
