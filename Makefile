GO ?= go

.PHONY: all build vet test race bench

all: build test

build:
	$(GO) vet ./...
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: the parallel fork engine, the
# sharded allocator, and everything between them.
race:
	$(GO) test -race ./internal/core/... ./internal/mem/...

# Fixed iteration count: several benchmarks do expensive unmeasured
# setup per iteration (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem -benchtime=20x .
