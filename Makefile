GO ?= go

.PHONY: all build vet test race bench pressure trace chaos

all: build test

build:
	$(GO) vet ./...
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: the parallel fork engine, the
# sharded allocator, the lock-free flight recorder, and everything
# between them.
race:
	$(GO) test -race ./internal/core/... ./internal/mem/... ./internal/trace/...

# Fixed iteration count: several benchmarks do expensive unmeasured
# setup per iteration (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem -benchtime=20x .

# Memory-pressure gate: the reclaim stress tests under -race (kswapd
# eviction during concurrent forks, swap round-trips, the serverless
# 50%-footprint acceptance scenario), the pressure benchmark at a few
# iterations, and the occupancy sweep experiment at a small scale.
pressure:
	$(GO) test -race -run 'Swap|Kswapd|Reclaim|Vmstat|Pressure' ./internal/core ./internal/kernel ./internal/mem/reclaim ./odfork
	$(GO) test -run '^$$' -bench BenchmarkForkUnderPressure -benchtime 3x .
	$(GO) run ./cmd/odf-bench -max-gb 0.25 -reps 2 pressure

# Chaos gate: the fault-injection soak (cmd/odf-chaos) under -race
# with a pinned seed matrix — alloc, swap I/O, and fork failpoints at
# p=0.01 (the harness default). Seed 1 runs the full 10,000-op
# acceptance schedule; the other seeds replay shorter schedules for
# breadth. Fixed seeds make any failure replayable with the same line.
chaos:
	$(GO) run -race ./cmd/odf-chaos -seed 1 -ops 10000 -p 0.01
	$(GO) run -race ./cmd/odf-chaos -seed 2 -ops 2500 -p 0.01
	$(GO) run -race ./cmd/odf-chaos -seed 3 -ops 2500 -p 0.01

# Flight-recorder artifact: record a fork/fault/reclaim window, export
# it as Chrome trace-event JSON (load trace.json in ui.perfetto.dev),
# and validate the file. CI runs this as the trace gate.
trace:
	$(GO) run ./cmd/odf-bench -max-gb 0.25 -reps 2 -trace-out trace.json trace
	$(GO) run ./cmd/odf-tracecheck trace.json
