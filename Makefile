GO ?= go

.PHONY: all build vet test race bench bench-json bench-gate bench-gate-baseline pressure trace chaos slo serverless obs-scrape ckpt

# Newest committed curated baseline (BENCH_<date>.json sorts by date).
# *_pre.json files are point-in-time "before" records kept for the
# history, never the gate's reference.
BENCH_BASELINE ?= $(lastword $(sort $(filter-out %_pre.json,$(wildcard BENCH_*.json))))

all: build test

build:
	$(GO) vet ./...
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: the parallel fork engine, the
# sharded allocator, the lock-free flight recorder, the socket serving
# tier (concurrent clients + snapshotter forks + reclaim), and
# everything between them.
race:
	$(GO) test -race ./internal/core/... ./internal/mem/... ./internal/trace/... ./internal/apps/serve/... ./internal/slo/... ./internal/tenant/... ./internal/kernel/...

# Fixed iteration count: several benchmarks do expensive unmeasured
# setup per iteration (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem -benchtime=20x .

# Emit the odf-bench/v1 JSON record (fork p50/p99 by mode and size,
# fault fast-path latency, COW faults/sec, allocs/op). Curated
# baselines are committed as BENCH_<date>.json; bench_out.json is
# transient output and gitignored. GOMAXPROCS is pinned to 1 so the
# record measures single-core hot-path cost: classic fork switches to
# its parallel engine above one proc, which makes the numbers a
# function of the machine's core count rather than of the code.
bench-json:
	GOMAXPROCS=1 $(GO) run ./cmd/odf-benchjson -out bench_out.json

# Drift-proof regression gate: an interleaved A/B split-half
# measurement of HEAD at small size. Rounds alternate between two
# cells; the gate fails only when the two halves of the SAME code
# disagree past the 5% threshold in every attempt — i.e. when the
# runner cannot resolve a regression of that size, or a change made
# the hot path's cost unstable. The newest committed baseline is
# compared advisorily (deltas printed, never failing), since committed
# numbers were measured on different hardware and drift with the host.
# GOMAXPROCS must match bench-json's pin — single-core hot-path cost.
bench-gate:
	GOMAXPROCS=1 $(GO) run ./cmd/odf-benchjson -short -ab -out bench_out.json \
		-compare $(BENCH_BASELINE) -threshold 0.05

# The old absolute gate against the committed baseline, for machines
# comparable to the one that measured it.
bench-gate-baseline:
	GOMAXPROCS=1 $(GO) run ./cmd/odf-benchjson -short -out bench_out.json \
		-compare $(BENCH_BASELINE) -threshold 0.05

# Memory-pressure gate: the reclaim stress tests under -race (kswapd
# eviction during concurrent forks, swap round-trips, the serverless
# 50%-footprint acceptance scenario), the pressure benchmark at a few
# iterations, and the occupancy sweep experiment at a small scale.
pressure:
	$(GO) test -race -run 'Swap|Kswapd|Reclaim|Vmstat|Pressure' ./internal/core ./internal/kernel ./internal/mem/reclaim ./odfork
	$(GO) test -run '^$$' -bench BenchmarkForkUnderPressure -benchtime 3x .
	$(GO) run ./cmd/odf-bench -max-gb 0.25 -reps 2 pressure

# Chaos gate: the fault-injection soak (cmd/odf-chaos) under -race
# with a pinned seed matrix — alloc, swap I/O, and fork failpoints at
# p=0.01 (the harness default). Seed 1 runs the full 10,000-op
# acceptance schedule; the other seeds replay shorter schedules for
# breadth. Fixed seeds make any failure replayable with the same line.
chaos:
	$(GO) run -race ./cmd/odf-chaos -seed 1 -ops 10000 -p 0.01
	$(GO) run -race ./cmd/odf-chaos -seed 2 -ops 2500 -p 0.01
	$(GO) run -race ./cmd/odf-chaos -seed 3 -ops 2500 -p 0.01
	$(GO) run -race ./cmd/odf-chaos -seed 4 -ops 2500 -p 0.01 -tenants 2

# Tail-latency SLO sweep over real TCP sockets: the kv app serves
# fixed isochronous load while periodic snapshots fork the serving
# process; p50/p99/p999/max are reported split into fork-coincident
# and quiescent samples. Writes the odf-slo/v1 JSON (transient,
# gitignored — curated records are committed as SLO_<date>.json) and
# validates it. The headline is the classic-vs-on-demand contrast in
# fork-coincident p99 at the SAME offered rate; -trials 5 rejects
# shared-runner stall windows (see internal/slo.HarnessConfig.Trials).
slo:
	$(GO) run ./cmd/odf-slo -short -trials 5 -out slo_out.json
	$(GO) run ./cmd/odf-slo -check slo_out.json

# Multi-tenant serverless soak: the odf-serverless daemon boots 8
# tenants whose quotas sum to 50% of the machine's frames, makes one a
# noisy neighbor, and drives skewed load over real TCP. Gates: the
# noisy tenant's forks queue and its frames are reclaimed first, the
# well-behaved tenants see zero ErrNoMem, and their clone fork p99
# stays within 2x a single-tenant baseline. Writes the
# odf-serverless/v1 JSON (transient, gitignored — curated records are
# committed as SERVERLESS_<date>.json) and re-validates it.
serverless:
	$(GO) run ./cmd/odf-serverless -mode soak -out serverless_out.json
	$(GO) run ./cmd/odf-serverless -check serverless_out.json

# Durable-checkpoint gate: the format and kernel-wiring unit tests
# under -race, a fuzz smoke over the open/verify/read path (any input
# is rejected or served, never a crash), the crash-consistency chaos
# matrix (writers killed at random failpoints; every surviving file
# either restores byte-identically against an in-memory shadow or is
# rejected by fsck — pinned seeds make failures replayable), the
# serverless checkpoint→restart→restore round trip over real TCP, and
# the CI artifacts: a sample snapshot plus its fsck report.
ckpt:
	$(GO) test -race ./internal/ckpt/ -run 'Ckpt|Checkpoint|Chain|Crash|Corrupt|Trunc|BitFlip|Fsck|Read|Incremental|RoundTrip|Abort|Writer'
	$(GO) test -race ./internal/kernel/ -run 'Checkpoint|Restore|Ckpt'
	$(GO) test ./internal/ckpt/ -run '^$$' -fuzz FuzzCheckpointOpen -fuzztime 10s
	$(GO) build -o odf-ckpt.bin ./cmd/odf-ckpt
	rm -rf ckpt_chaos && mkdir -p ckpt_chaos/s1 ckpt_chaos/s2 ckpt_chaos/s3
	./odf-ckpt.bin chaos -dir ckpt_chaos/s1 -seed 1 -n 30
	./odf-ckpt.bin chaos -dir ckpt_chaos/s2 -seed 7 -n 30
	./odf-ckpt.bin chaos -dir ckpt_chaos/s3 -seed 42 -n 30
	rm -rf ckpt_sv && $(GO) run ./cmd/odf-serverless -mode checkpoint -ckpt-dir ckpt_sv -tenants 4 -quota 128
	$(GO) run ./cmd/odf-serverless -mode restore -ckpt-dir ckpt_sv
	./odf-ckpt.bin write -out sample.ckpt -pages 256 -seed 1
	./odf-ckpt.bin verify sample.ckpt
	./odf-ckpt.bin fsck -dir . > ckpt_fsck.txt
	./odf-ckpt.bin fsck -dir ckpt_chaos/s1 -json >> ckpt_fsck.txt
	cat ckpt_fsck.txt

# Flight-recorder artifact: record a fork/fault/reclaim window, export
# it as Chrome trace-event JSON (load trace.json in ui.perfetto.dev),
# and validate the file. CI runs this as the trace gate.
trace:
	$(GO) run ./cmd/odf-bench -max-gb 0.25 -reps 2 -trace-out trace.json trace
	$(GO) run ./cmd/odf-tracecheck trace.json

# Mid-run observability scrape: boot the serverless soak with the
# observability endpoint armed, then — while tenant load is flowing —
# poll /metrics until the exposition parses with the in-tree parser
# and the per-tenant fork histograms have counted real forks. The
# validated scrape lands in obs_scrape.txt (CI uploads it). The soak
# is run long (-n) so the scrape window is generous; the daemon is
# killed once the scrape passes — its own gates run in the serverless
# job, not here.
obs-scrape:
	$(GO) build -o odf-serverless.bin ./cmd/odf-serverless
	$(GO) build -o odf-top.bin ./cmd/odf-top
	@set -e; \
	./odf-serverless.bin -mode soak -obs 127.0.0.1:9180 \
		-n 20000 -noisy-n 600 >/dev/null 2>&1 & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	./odf-top.bin -url http://127.0.0.1:9180 -check -wait 120s \
		-require-tenant-forks -scrape obs_scrape.txt
