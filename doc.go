// Package repro is a from-scratch Go reproduction of "On-demand-fork:
// A Microsecond Fork for Memory-Intensive and Latency-Sensitive
// Applications" (Zhao, Gong, Fonseca — EuroSys 2021).
//
// The public API lives in package repro/odfork; the experiment harness
// is the odf-bench command; bench_test.go regenerates every table and
// figure of the paper's evaluation as Go benchmarks. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package repro
